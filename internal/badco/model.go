// Package badco implements a BADCO-style behavioural application-dependent
// core model (Velásquez et al., SAMOS 2012), the fast approximate
// simulator of the paper.
//
// A Model is built per benchmark from two detailed-simulator runs with
// different fixed uncore latencies. The model is a sequence of nodes, one
// per demand uncore request, each carrying the µops fetched since the
// previous request, an inferred dependency on an earlier node (or none)
// and a compute delay. Prefetch and writeback requests ride along as
// satellites of their nearest demand node. A Machine (machine.go) replays
// the node graph against a real uncore: it reproduces the calibration
// timing exactly under the calibration latency and approximates the
// detailed core under any other uncore, at a fraction of the cost.
package badco

import (
	"fmt"

	"mcbench/internal/cpu"
	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// Satellite is a non-gating request (prefetch or writeback) anchored to a
// demand node: it issues at a fixed offset after the node issues.
type Satellite struct {
	VAddr    uint64
	PC       uint64
	Kind     cpu.RequestKind
	Write    bool
	Prefetch bool
	Offset   uint64 // issue offset from the owning node's issue time
}

// Node is one demand uncore request plus the computation leading to it.
type Node struct {
	OpIndex int    // trace position reached when this request issued
	VAddr   uint64 // virtual line address of the demand request
	PC      uint64
	Kind    cpu.RequestKind
	Write   bool

	// Dep is the index of the node whose completion gates this node's
	// issue, or -1 if the node is anchored to program progress (the
	// previous node's issue time).
	Dep int
	// Delay is the compute delay: cycles from the anchor (Dep's
	// completion, or the previous node's issue) to this node's issue.
	// Anchored delays may be negative: out-of-order cores issue requests
	// out of program order, and nodes are stored in recording order.
	Delay int64
	// WindowDep is the index of the last node lying more than one
	// reorder-buffer length of µops behind this one, or -1. Its
	// completion bounds this node's issue: the core cannot run further
	// ahead than its instruction window.
	WindowDep int

	Satellites []Satellite
}

// Model is the behavioural core model of one benchmark on one core
// configuration.
type Model struct {
	Name     string
	TraceLen int    // µops per trace iteration
	Nodes    []Node // demand nodes in issue order
	// Tail is the compute time from the last node's completion to the end
	// of the trace iteration, measured in the calibration run.
	Tail uint64
	// Head is the compute time from iteration start to the first node's
	// issue (also the whole-iteration time when Nodes is empty).
	Head uint64
	// CalCycles is the calibration run A cycle count, for reference.
	CalCycles uint64
}

// BuildConfig controls model construction.
type BuildConfig struct {
	Core cpu.Config
	// LatA and LatB are the two calibration uncore latencies. They should
	// bracket the plausible range of real uncore latencies.
	LatA, LatB uint64
	// DepWindow is how many earlier nodes are examined when inferring a
	// dependency.
	DepWindow int
	// DepTolerance is the maximum |deltaA - deltaB| (cycles) for a
	// dependency to be accepted.
	DepTolerance uint64
}

// DefaultBuildConfig returns sensible calibration parameters: a near-LLC
// hit latency and a DRAM-class latency.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		Core:         cpu.DefaultConfig(),
		LatA:         30,
		LatB:         300,
		DepWindow:    24,
		DepTolerance: 3,
	}
}

// timedReq is one demand request with observed timing.
type timedReq struct {
	req      cpu.UncoreRequest
	issue    uint64
	complete uint64
}

// Build constructs the behavioural model for tr by running the detailed
// core twice under fixed-latency uncores and inferring the node graph.
func Build(tr *trace.Trace, cfg BuildConfig) (*Model, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("badco: empty trace")
	}
	if cfg.LatA == cfg.LatB {
		return nil, fmt.Errorf("badco: calibration latencies must differ")
	}
	if cfg.DepWindow <= 0 {
		cfg.DepWindow = 24
	}

	runA, cyclesA, err := calibrate(tr, cfg.Core, cfg.LatA)
	if err != nil {
		return nil, err
	}
	runB, cyclesB, err := calibrate(tr, cfg.Core, cfg.LatB)
	if err != nil {
		return nil, err
	}

	demandA, satA := split(runA)
	demandB, _ := split(runB)

	// Match run-B demand requests to run-A requests by address sequence.
	// Timing-dependent divergence (e.g. differently dropped prefetches
	// changing L1 contents) is tolerated by skipping unmatched requests.
	matchB := matchRequests(demandA, demandB)

	m := &Model{
		Name:      tr.Name,
		TraceLen:  tr.Len(),
		Nodes:     make([]Node, 0, len(demandA)),
		CalCycles: cyclesA,
	}
	for j, a := range demandA {
		n := Node{
			OpIndex:   a.req.OpIndex,
			VAddr:     a.req.VAddr,
			PC:        a.req.PC,
			Kind:      a.req.Kind,
			Write:     a.req.Write,
			Dep:       -1,
			WindowDep: -1,
		}
		if j == 0 {
			n.Delay = int64(a.issue)
			m.Head = a.issue
		} else {
			n.Dep, n.Delay = inferDep(demandA, demandB, matchB, j, cfg)
		}
		m.Nodes = append(m.Nodes, n)
	}
	if len(demandA) > 0 {
		last := demandA[len(demandA)-1]
		if cyclesA > last.complete {
			m.Tail = cyclesA - last.complete
		}
	} else {
		m.Head = cyclesA
	}
	calibrateWindow(m, cfg, cyclesB)
	attachSatellites(m, demandA, satA)
	return m, nil
}

// calibrate runs the detailed core over one trace iteration under a
// fixed-latency uncore, recording all requests.
func calibrate(tr *trace.Trace, core cpu.Config, lat uint64) ([]cpu.UncoreRequest, uint64, error) {
	mem := &uncore.FixedLatency{Lat: lat}
	c, err := cpu.New(0, core, tr, mem)
	if err != nil {
		return nil, 0, err
	}
	// Preallocate for a memory-heavy trace (~1 request per 8 µops) so the
	// recording does not grow through repeated reallocations.
	reqs := make([]cpu.UncoreRequest, 0, tr.Len()/8)
	c.SetRecorder(&reqs)
	c.Run(tr.Len())
	return reqs, c.Cycles(), nil
}

// split separates demand requests (which become nodes) from satellites
// (prefetches and writebacks). The satellite slice is index-aligned with
// the demand request that most recently preceded it (-1 if before any).
func split(reqs []cpu.UncoreRequest) ([]timedReq, []satWithAnchor) {
	demand := make([]timedReq, 0, len(reqs))
	sats := make([]satWithAnchor, 0, len(reqs))
	for _, r := range reqs {
		if r.Prefetch || r.Kind == cpu.ReqWB {
			sats = append(sats, satWithAnchor{req: r, anchor: len(demand) - 1})
			continue
		}
		demand = append(demand, timedReq{req: r, issue: r.Issue, complete: r.Complete})
	}
	return demand, sats
}

type satWithAnchor struct {
	req    cpu.UncoreRequest
	anchor int // index of preceding demand node, -1 if none
}

// matchRequests aligns run-B demand requests with run-A requests by
// virtual address, tolerating insertions/deletions. It returns, for each
// A index, the matching B index or -1.
func matchRequests(a, b []timedReq) []int {
	match := make([]int, len(a))
	bi := 0
	for ai := range a {
		match[ai] = -1
		// Look ahead a bounded distance in B for the same address.
		for k := 0; k < 8 && bi+k < len(b); k++ {
			if b[bi+k].req.VAddr == a[ai].req.VAddr {
				match[ai] = bi + k
				bi = bi + k + 1
				break
			}
		}
	}
	return match
}

// inferDep finds the latest earlier node whose completion consistently
// (in both calibration runs) precedes node j's issue by the same delay,
// which is the BADCO signature of a true dependency. Without one, the
// node is anchored to the previous node's issue.
func inferDep(a, b []timedReq, matchB []int, j int, cfg BuildConfig) (dep int, delay int64) {
	ja := a[j]
	jb := -1
	if matchB[j] >= 0 {
		jb = matchB[j]
	}
	lo := j - cfg.DepWindow
	if lo < 0 {
		lo = 0
	}
	if jb >= 0 {
		for i := j - 1; i >= lo; i-- {
			ib := matchB[i]
			if ib < 0 || ib >= jb {
				continue
			}
			if ja.issue < a[i].complete || b[jb].issue < b[ib].complete {
				continue
			}
			deltaA := ja.issue - a[i].complete
			deltaB := b[jb].issue - b[ib].complete
			var diff uint64
			if deltaA > deltaB {
				diff = deltaA - deltaB
			} else {
				diff = deltaB - deltaA
			}
			if diff <= cfg.DepTolerance {
				return i, int64(deltaA)
			}
		}
	}
	// Anchored: (possibly negative) delay from the previous node's issue.
	return -1, int64(ja.issue) - int64(a[j-1].issue)
}

// setWindowDeps computes, for every node, the last node at least window µops
// behind it, modelling the instruction-window bound on memory parallelism.
func setWindowDeps(nodes []Node, window int) {
	w := -1
	for j := range nodes {
		for w+1 < j && nodes[w+1].OpIndex <= nodes[j].OpIndex-window {
			w++
		}
		nodes[j].WindowDep = w
	}
}

// replayFixed runs one iteration of the model against a fixed-latency
// memory and returns the end cycle.
func replayFixed(m *Model, lat uint64) uint64 {
	ma := MustNewMachine(0, m, &uncore.FixedLatency{Lat: lat})
	return ma.RunIterations(1)
}

// calibrateWindow fits the effective instruction window (in µops) so the
// model reproduces BOTH calibration runs: the node delays already encode
// run A exactly, and the window is the one degree of freedom that
// controls how much memory parallelism survives when latency grows, so it
// is fitted against run B. The detailed core's real window is shaped by
// several interacting resources (ROB, load/store queues, MSHRs,
// reservation stations); fitting collapses them into one number per
// benchmark.
func calibrateWindow(m *Model, cfg BuildConfig, cyclesB uint64) {
	if len(m.Nodes) == 0 {
		return
	}
	maxWin := 4 * cfg.Core.ROB
	best, bestErr := maxWin, uint64(1)<<63
	lo, hi := 4, maxWin
	for lo <= hi {
		mid := (lo + hi) / 2
		setWindowDeps(m.Nodes, mid)
		end := replayFixed(m, cfg.LatB)
		var diff uint64
		if end > cyclesB {
			diff = end - cyclesB
			lo = mid + 1 // too slow: widen the window
		} else {
			diff = cyclesB - end
			hi = mid - 1 // too fast: narrow it
		}
		if diff < bestErr {
			best, bestErr = mid, diff
		}
	}
	// The fit must not break the exact run-A replay: widen until the fast
	// calibration stays within tolerance.
	for ; best <= maxWin; best += best / 4 {
		setWindowDeps(m.Nodes, best)
		end := replayFixed(m, cfg.LatA)
		var diff uint64
		if end > m.CalCycles {
			diff = end - m.CalCycles
		} else {
			diff = m.CalCycles - end
		}
		if diff*20 <= m.CalCycles { // within 5%
			return
		}
	}
	setWindowDeps(m.Nodes, maxWin)
}

// attachSatellites hangs each satellite on its anchor node with an issue
// offset; satellites preceding the first node are attached to node 0 with
// offset 0.
func attachSatellites(m *Model, demand []timedReq, sats []satWithAnchor) {
	if len(m.Nodes) == 0 {
		return
	}
	for _, s := range sats {
		anchor := s.anchor
		if anchor < 0 {
			anchor = 0
		}
		base := demand[anchor].issue
		off := uint64(0)
		if s.req.Issue > base {
			off = s.req.Issue - base
		}
		n := &m.Nodes[anchor]
		n.Satellites = append(n.Satellites, Satellite{
			VAddr:    s.req.VAddr,
			PC:       s.req.PC,
			Kind:     s.req.Kind,
			Write:    s.req.Write,
			Prefetch: s.req.Prefetch,
			Offset:   off,
		})
	}
}

// NodeCount returns the number of demand nodes in the model.
func (m *Model) NodeCount() int { return len(m.Nodes) }

// RequestsPerKiloOp returns demand nodes per 1000 µops, a measure of the
// benchmark's memory intensity as seen below the L1s.
func (m *Model) RequestsPerKiloOp() float64 {
	if m.TraceLen == 0 {
		return 0
	}
	return float64(len(m.Nodes)) * 1000 / float64(m.TraceLen)
}
