package badco

import (
	"testing"
	"testing/quick"

	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// Property: Build succeeds on arbitrary valid synthetic benchmarks and
// the resulting machine is deterministic and monotone in memory latency.
func TestBuildReplayProperty(t *testing.T) {
	f := func(seed int64, mixRaw, footRaw uint8) bool {
		loadFrac := 0.1 + float64(mixRaw%40)/100 // 0.10 .. 0.49
		foot := (int(footRaw%8) + 1) * 32 * trace.KB
		p := trace.Params{
			Name: "prop", Seed: seed,
			LoadFrac: loadFrac, StoreFrac: 0.1, BranchFrac: 0.1,
			DepMean: 8, LoadDepFrac: 0.4, BranchBias: 0.9,
			CodeBytes: 16 * trace.KB,
			Patterns: []trace.PatternSpec{
				{Kind: trace.HotSet, Bytes: foot, Weight: 2},
				{Kind: trace.Scan, Bytes: foot, Stride: 16, Weight: 1},
			},
		}
		tr, err := trace.Generate(p, 4000)
		if err != nil {
			return false
		}
		m, err := Build(tr, DefaultBuildConfig())
		if err != nil {
			return false
		}
		// Deterministic replay.
		e1 := MustNewMachine(0, m, &uncore.FixedLatency{Lat: 60}).RunIterations(2)
		e2 := MustNewMachine(0, m, &uncore.FixedLatency{Lat: 60}).RunIterations(2)
		if e1 != e2 {
			return false
		}
		// Monotone in latency.
		slow := MustNewMachine(0, m, &uncore.FixedLatency{Lat: 400}).RunIterations(2)
		return slow >= e1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Committed never decreases and grows by exactly TraceLen per
// iteration.
func TestCommittedMonotoneProperty(t *testing.T) {
	m, _ := buildModel(t, "gcc")
	ma := MustNewMachine(0, m, &uncore.FixedLatency{Lat: 80})
	prev := uint64(0)
	for i := 0; i < 3*len(m.Nodes); i++ {
		ma.Step()
		c := ma.Committed()
		if c < prev {
			t.Fatalf("Committed went backwards: %d < %d", c, prev)
		}
		prev = c
	}
	iters, _ := ma.IterationEnds()
	if want := iters * uint64(m.TraceLen); prev < want {
		t.Fatalf("committed %d below %d after %d iterations", prev, want, iters)
	}
}
