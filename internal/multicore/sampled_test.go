package multicore

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcbench/internal/cache"
	"mcbench/internal/trace"
)

var updateSampledGolden = flag.Bool("update-sampled", false, "rewrite testdata/sampled_golden.txt")

func TestSamplingSpecValidate(t *testing.T) {
	cases := []struct {
		spec SamplingSpec
		ok   bool
	}{
		{SamplingSpec{}, true},
		{SamplingSpec{Unit: 1000, Window: 100}, true},
		{SamplingSpec{Unit: 1000, Window: 100, Warmup: 900}, true},
		{SamplingSpec{Unit: 1000, Window: 100, Warmup: 901}, false},
		{SamplingSpec{Unit: 1000}, false},
		{SamplingSpec{Window: 100}, false},
		{SamplingSpec{Warmup: 100}, false},
		{SamplingSpec{Unit: 1000, Window: 100, Warmup: 100, Warm: 800}, true},
		{SamplingSpec{Unit: 1000, Window: 100, Warmup: 100, Warm: 801}, false},
		{SamplingSpec{Warm: 100}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
	if got := (SamplingSpec{}).String(); got != "exact" {
		t.Errorf("zero spec String = %q", got)
	}
	if got := (SamplingSpec{Unit: 1000, Window: 100, Warmup: 50}).String(); got != "u1000d100w50" {
		t.Errorf("spec String = %q", got)
	}
	if got := (SamplingSpec{Unit: 1000, Window: 100, Warmup: 50, Warm: 400}).String(); got != "u1000d100w50f400" {
		t.Errorf("bounded-warm spec String = %q", got)
	}
}

// formatSampled renders every numeric field of a sampled result with
// full float bit patterns, so the golden pins the run byte-identically.
func formatSampled(r SampledResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%s policy=%s spec=%s windows=%d instructions=%d\n",
		r.Result.Workload, r.Policy, r.Spec, r.Windows, r.Instructions)
	for i := range r.IPC {
		fmt.Fprintf(&b, "core %d cycles=%d ipc=%.9f(%016x) ci=%.9f(%016x) cv=%.9f(%016x)\n",
			i, r.Cycles[i],
			r.IPC[i], math.Float64bits(r.IPC[i]),
			r.CIHalf[i], math.Float64bits(r.CIHalf[i]),
			r.CV[i], math.Float64bits(r.CV[i]))
		for k, s := range r.Samples[i] {
			fmt.Fprintf(&b, "  window %d ipc=%.9f(%016x)\n", k, s, math.Float64bits(s))
		}
	}
	return b.String()
}

// TestSampledGolden pins one sampled run byte-identical across
// refactors: the exact per-window IPCs, interval and cv of a fixed
// workload/spec, bit patterns included.
func TestSampledGolden(t *testing.T) {
	trs := traces(t)
	spec := SamplingSpec{Unit: 4000, Window: 1000, Warmup: 500}
	r, err := DetailedSampled(context.Background(), Workload{"mcf", "povray"}, trs, cache.LRU, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := formatSampled(r)
	path := filepath.Join("testdata", "sampled_golden.txt")
	if *updateSampledGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-sampled): %v", err)
	}
	if got != string(want) {
		t.Errorf("sampled run diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSampledDeterministic guards against hidden nondeterminism: two
// independent sampled runs of the same inputs are bit-identical.
func TestSampledDeterministic(t *testing.T) {
	trs := traces(t)
	spec := SamplingSpec{Unit: 5000, Window: 1000, Warmup: 1000}
	a, err := DetailedSampled(context.Background(), Workload{"soplex", "gcc"}, trs, cache.DRRIP, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DetailedSampled(context.Background(), Workload{"soplex", "gcc"}, trs, cache.DRRIP, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if formatSampled(a) != formatSampled(b) {
		t.Error("two identical sampled runs diverged")
	}
}

// coverageRate is the configured rate of the CI-coverage property test:
// across the seeded ensemble below, at least this fraction of
// (trace-seed, workload, core) cases must have the exact steady-state
// IPC inside the reported interval. The interval bounds the sampling
// error of the window-mean estimator; the residual functional-warming
// bias eats some of the nominal 95%, so the configured floor sits below
// it.
const coverageRate = 0.70

// maxMeanSampledError bounds the mean relative IPC error of the sampled
// estimator across the same ensemble. The traces here are short enough
// to keep the test fast (~20 windows per run), so the bound is governed
// by sampling noise on the high-variance workloads (hmmer's windows are
// strongly bimodal, cv ≈ 0.8) rather than estimator bias; the wide
// intervals those runs report are exactly what the coverage assertion
// checks. Bench-scale accuracy (many more windows on 10×-longer traces)
// is measured by scripts/bench.sh instead.
const maxMeanSampledError = 0.06

// seededTraces generates the named benchmarks at length n with every
// generator seed shifted by off — independent trace draws from the same
// workload distributions, so the coverage property is tested across
// many traces, not one.
func seededTraces(t *testing.T, names []string, n int, off int64) TraceMap {
	t.Helper()
	out := make(TraceMap, len(names))
	for _, name := range names {
		p, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		p.Seed += off
		tr, err := trace.Generate(p, n)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = tr
	}
	return out
}

// TestSampledCICoversExact is the seeded property test: across
// independent trace draws and workloads, the reported interval must
// contain the exact steady-state IPC at no less than the configured
// rate, and the mean relative error must stay within the accuracy
// target. The baseline is a warmed exact run (DetailedWithWarmup)
// rather than a cold one: systematic sampling estimates steady-state
// IPC by construction — its windows never cover the cold-start
// transient, which on traces this short is a measurable fraction of a
// cold run's cycles, so a cold baseline would compare two different
// quantities. Singles and a balanced pair only: heterogeneous mixes
// progress in per-µop lockstep under sampling, which distorts the
// interference alignment (see the package comment's accuracy notes).
func TestSampledCICoversExact(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation ensemble")
	}
	const n = 200000
	spec := SamplingSpec{Unit: 10000, Window: 2000, Warmup: 2000}
	names := []string{"mcf", "gcc", "soplex", "hmmer"}
	workloads := []Workload{
		{"mcf"}, {"gcc"}, {"soplex"}, {"hmmer"}, {"gcc", "soplex"},
	}
	var covered, total int
	var errSum float64
	ctx := context.Background()
	for _, off := range []int64{0, 7000, 14000} {
		trs := seededTraces(t, names, n, off)
		for _, w := range workloads {
			exact, err := DetailedWithWarmup(ctx, w, trs, cache.LRU, spec.Unit, n-spec.Unit)
			if err != nil {
				t.Fatal(err)
			}
			sampled, err := DetailedSampled(ctx, w, trs, cache.LRU, spec, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range exact.IPC {
				diff := math.Abs(sampled.IPC[i] - exact.IPC[i])
				errSum += diff / exact.IPC[i]
				total++
				if diff <= sampled.CIHalf[i] {
					covered++
				}
				t.Logf("seed+%d %s core %d: exact %.4f sampled %.4f ± %.4f (cv %.3f)",
					off, w, i, exact.IPC[i], sampled.IPC[i], sampled.CIHalf[i], sampled.CV[i])
			}
		}
	}
	if rate := float64(covered) / float64(total); rate < coverageRate {
		t.Errorf("CI covered exact IPC in %d/%d cases (%.2f), want >= %.2f", covered, total, rate, coverageRate)
	}
	if mean := errSum / float64(total); mean > maxMeanSampledError {
		t.Errorf("mean sampled IPC error %.4f exceeds %.4f", mean, maxMeanSampledError)
	}
}

// TestSampledErrors exercises the argument contract.
func TestSampledErrors(t *testing.T) {
	trs := traces(t)
	ctx := context.Background()
	if _, err := DetailedSampled(ctx, Workload{"mcf"}, trs, cache.LRU, SamplingSpec{}, 0); err == nil {
		t.Error("disabled spec accepted")
	}
	if _, err := DetailedSampled(ctx, Workload{"mcf"}, trs, cache.LRU, SamplingSpec{Unit: 100, Window: 80, Warmup: 30}, 0); err == nil {
		t.Error("overfull unit accepted")
	}
	if _, err := DetailedSampled(ctx, Workload{"mcf"}, trs, cache.LRU, SamplingSpec{Unit: never, Window: 10}, 0); err == nil {
		t.Error("unit beyond quota accepted")
	}
}
