package multicore

import (
	"context"
	"math/rand"
	"testing"

	"mcbench/internal/cache"
)

// The checkpoint golden tests prove the snapshot layer's central claim:
// a run interrupted at any schedule boundary and restored — into fresh
// machines or over dirty ones — finishes bit-identically to the
// uninterrupted run, and a shared-warmup fan-out reproduces exactly the
// sequential warm-then-swap reference.

// TestGoldenCheckpointResumeDetailed interrupts runs at randomized clock
// boundaries and resumes each checkpoint into fresh machines.
func TestGoldenCheckpointResumeDetailed(t *testing.T) {
	trs := traces(t)
	ctx := context.Background()
	w := Workload{"mcf", "soplex"}
	const quota = 8000
	uninterrupted, err := Detailed(ctx, w, trs, cache.DRRIP, quota)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 3; trial++ {
		every := uint64(400 + rng.Intn(2000))
		var cps []*Checkpoint
		run, err := DetailedCheckpointed(ctx, w, trs, cache.DRRIP, quota, every, func(cp *Checkpoint) error {
			cps = append(cps, cp)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "checkpointed run", run, uninterrupted)
		if len(cps) == 0 {
			t.Fatalf("no checkpoints captured at interval %d", every)
		}
		cp := cps[rng.Intn(len(cps))]
		resumed, err := DetailedResume(ctx, cp, trs)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "resumed", resumed, uninterrupted)
	}
}

// TestGoldenCheckpointResumeSingleCore pins the solo fast path of the
// continuation driver, including periodic capture.
func TestGoldenCheckpointResumeSingleCore(t *testing.T) {
	trs := traces(t)
	ctx := context.Background()
	w := Workload{"hmmer"}
	const quota = 6000
	uninterrupted, err := Detailed(ctx, w, trs, cache.LRU, quota)
	if err != nil {
		t.Fatal(err)
	}
	var cps []*Checkpoint
	run, err := DetailedCheckpointed(ctx, w, trs, cache.LRU, quota, 700, func(cp *Checkpoint) error {
		cps = append(cps, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "solo checkpointed run", run, uninterrupted)
	if len(cps) == 0 {
		t.Fatal("no checkpoints captured")
	}
	for _, cp := range []*Checkpoint{cps[0], cps[len(cps)-1]} {
		resumed, err := DetailedResume(ctx, cp, trs)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "solo resumed", resumed, uninterrupted)
	}
}

// TestGoldenCheckpointRestoreModes restores one checkpoint three ways —
// into fresh machines continued by the batched driver, into fresh
// machines continued by the retained per-step reference stepper, and
// over machines dirtied by unrelated progress — and demands the same
// bits from all of them.
func TestGoldenCheckpointRestoreModes(t *testing.T) {
	trs := traces(t)
	ctx := context.Background()
	w := Workload{"mcf", "povray"}
	const quota = 8000
	uninterrupted, err := Detailed(ctx, w, trs, cache.LRU, quota)
	if err != nil {
		t.Fatal(err)
	}
	var cps []*Checkpoint
	if _, err := DetailedCheckpointed(ctx, w, trs, cache.LRU, quota, 1500, func(cp *Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("want at least 2 checkpoints, got %d", len(cps))
	}
	cp := cps[len(cps)/2]

	// Fresh machines, batched continuation (the DetailedResume path).
	fresh, err := DetailedResume(ctx, cp, trs)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "fresh restore", fresh, uninterrupted)

	// Fresh machines, per-step reference continuation.
	continueFrom := func(cores []stepper) Result {
		t.Helper()
		targets := make([]uint64, len(cores))
		for i := range targets {
			targets[i] = cp.Quota
		}
		reached := append([]bool(nil), cp.Reached...)
		quotaCycle := append([]uint64(nil), cp.QuotaCycle...)
		if err := runInterleavedFromReference(ctx, cores, targets, reached, quotaCycle); err != nil {
			t.Fatal(err)
		}
		return assemble(cp.Workload, cp.Policy, quotaCycle, cp.Quota)
	}
	_, refCores, err := restoreDetailed(ctx, cp, trs, cp.Policy)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "reference-stepper restore", continueFrom(asSteppers(refCores)), uninterrupted)

	// Dirty machines: advance an identically built machine set to an
	// unrelated point, then restore the checkpoint over it.
	unc, cores, _, err := buildDetailed(ctx, w, trs, cache.LRU, quota)
	if err != nil {
		t.Fatal(err)
	}
	steppers := asSteppers(cores)
	if err := runToBoundary(ctx, steppers, 1234); err != nil {
		t.Fatal(err)
	}
	for i, c := range cores {
		c.Restore(&cp.CPU[i])
	}
	unc.Restore(&cp.Uncore)
	targets := make([]uint64, len(cores))
	for i := range targets {
		targets[i] = cp.Quota
	}
	reached := append([]bool(nil), cp.Reached...)
	quotaCycle := append([]uint64(nil), cp.QuotaCycle...)
	if err := runInterleavedFrom(ctx, steppers, targets, reached, quotaCycle, 0, nil); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "dirty restore", assemble(cp.Workload, cp.Policy, quotaCycle, cp.Quota), uninterrupted)
}

// TestGoldenWarmupSnapshotRestore pins warmup + restore + measure to the
// uninterrupted two-stage run, for both engines and across policies with
// RNG-bearing replacement state.
func TestGoldenWarmupSnapshotRestore(t *testing.T) {
	trs := traces(t)
	ctx := context.Background()
	w := Workload{"soplex", "hmmer"}
	const warmup, quota = 3000, 5000
	for _, pol := range []cache.PolicyName{cache.LRU, cache.DRRIP, cache.Random, cache.DIP} {
		direct, err := DetailedWithWarmup(ctx, w, trs, pol, warmup, quota)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := DetailedWarmup(ctx, w, trs, pol, warmup)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := DetailedFrom(ctx, cp, trs, pol, quota)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "detailed warmup "+string(pol), restored, direct)
	}

	mods := models(t)
	direct, err := ApproximateWithWarmup(ctx, w, mods, cache.DRRIP, warmup, quota)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ApproximateWarmup(ctx, w, mods, cache.DRRIP, warmup)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ApproximateFrom(ctx, cp, mods, cache.DRRIP, quota)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "badco warmup", restored, direct)
}

// TestGoldenWarmupMatchesReferenceSchedule pins the batched two-stage
// run to a fully per-step one: per-step warmup boundary, per-step
// measurement.
func TestGoldenWarmupMatchesReferenceSchedule(t *testing.T) {
	trs := traces(t)
	ctx := context.Background()
	w := Workload{"mcf", "gcc"}
	const warmup, quota = 2500, 4000

	batched, err := DetailedWithWarmup(ctx, w, trs, cache.LRU, warmup, quota)
	if err != nil {
		t.Fatal(err)
	}

	_, cores, _, err := buildDetailed(ctx, w, trs, cache.LRU, quota)
	if err != nil {
		t.Fatal(err)
	}
	steppers := asSteppers(cores)
	if err := runToBoundaryReference(ctx, steppers, warmup); err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{}
	cp.captureShared(w, cache.LRU, 0, steppers, nil, nil)
	targets := make([]uint64, len(steppers))
	for i := range targets {
		targets[i] = cp.Committed[i] + quota
	}
	reached := make([]bool, len(steppers))
	quotaCycle := make([]uint64, len(steppers))
	if err := runInterleavedFromReference(ctx, steppers, targets, reached, quotaCycle); err != nil {
		t.Fatal(err)
	}
	cycles := make([]uint64, len(steppers))
	for i := range cycles {
		cycles[i] = quotaCycle[i] - cp.Clocks[i]
	}
	assertBitIdentical(t, "two-stage reference", batched, assemble(w, cache.LRU, cycles, quota))
}

// TestGoldenSharedWarmupPolicySweep pins the snapshot-sharing sweep to a
// sequential reference that warms live machines under the base policy
// and swaps the LLC policy in place — no snapshot, no restore — per
// policy. It also checks the zero-warmup path degenerates to Detailed
// exactly.
func TestGoldenSharedWarmupPolicySweep(t *testing.T) {
	trs := traces(t)
	ctx := context.Background()
	w := Workload{"mcf", "soplex"}
	const warmup, quota = 3000, 4000
	policies := cache.PaperPolicies()

	swept, err := SweepPoliciesDetailed(ctx, w, trs, policies, warmup, quota)
	if err != nil {
		t.Fatal(err)
	}
	for i, pol := range policies {
		unc, cores, _, err := buildDetailed(ctx, w, trs, policies[0], quota)
		if err != nil {
			t.Fatal(err)
		}
		steppers := asSteppers(cores)
		if err := runToBoundary(ctx, steppers, warmup); err != nil {
			t.Fatal(err)
		}
		cp := &Checkpoint{}
		cp.captureShared(w, pol, 0, steppers, nil, nil)
		if pol != policies[0] {
			if err := unc.SetPolicy(pol, unc.Config().PolicySeed); err != nil {
				t.Fatal(err)
			}
		}
		ref, err := measureFrom(ctx, cp, steppers, pol, quota)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "shared sweep "+string(pol), swept[i], ref)
	}

	swept0, err := SweepPoliciesDetailed(ctx, w, trs, policies[:2], 0, quota)
	if err != nil {
		t.Fatal(err)
	}
	for i, pol := range policies[:2] {
		plain, err := Detailed(ctx, w, trs, pol, quota)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "zero-warmup sweep "+string(pol), swept0[i], plain)
	}
}
