package multicore

import (
	"context"
	"testing"

	"mcbench/internal/badco"
	"mcbench/internal/cache"
	"mcbench/internal/trace"
)

func BenchmarkProfileApprox(b *testing.B) {
	trs := TraceMap(trace.GenerateSuite(testLen))
	m, err := BuildModels(context.Background(), trs, []string{"mcf", "soplex", "gcc", "libquantum"}, badco.DefaultBuildConfig())
	if err != nil {
		b.Fatal(err)
	}
	w := Workload{"mcf", "soplex", "gcc", "libquantum"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Approximate(context.Background(), w, m, cache.LRU, 0)
	}
}
