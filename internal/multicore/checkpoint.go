// Checkpointed simulation. A Checkpoint captures a whole machine —
// every core (or BADCO machine), the shared uncore, and the driver's
// progress — at a boundary of the per-step schedule, so a later run can
// restore it into freshly built machines and continue bit-identically.
//
// Two workflows build on it:
//
//   - Shared warmup: run the expensive cache-warming prefix of a workload
//     once (DetailedWarmup / ApproximateWarmup), then fan out k policy or
//     quota variants from the same snapshot (DetailedFrom /
//     ApproximateFrom, SweepPoliciesDetailed). A k-policy sweep pays for
//     the warmup once instead of k times, which is where the sublinear
//     sweep cost comes from.
//
//   - Crash resume: DetailedCheckpointed emits periodic snapshots while
//     it runs; DetailedResume continues a snapshot to the original quota
//     and returns the same Result the uninterrupted run would have —
//     bit-identical, because the smallest-clock-first schedule is
//     memoryless given the clocks, committed counts and machine state.
package multicore

import (
	"context"
	"fmt"

	"mcbench/internal/badco"
	"mcbench/internal/cache"
	"mcbench/internal/cpu"
	"mcbench/internal/telemetry"
	"mcbench/internal/uncore"
)

// Checkpoint is a restorable snapshot of a multicore simulation. Exactly
// one of CPU or BADCO is populated, distinguishing the engine. All
// fields are exported so checkpoints survive encoding/gob persistence
// (see results.SaveCheckpoint).
type Checkpoint struct {
	Workload Workload
	Policy   cache.PolicyName

	// Quota is the per-thread instruction target of the interrupted run,
	// for Resume. A warmup checkpoint (a finished prefix, not an
	// interrupted run) has Quota 0.
	Quota uint64

	// Committed and Clocks index per core: µops committed and the local
	// clock at capture time.
	Committed []uint64
	Clocks    []uint64

	// Reached and QuotaCycle carry the driver's progress for Resume:
	// which cores crossed Quota already, and at which cycle. Warmup
	// checkpoints leave them nil.
	Reached    []bool
	QuotaCycle []uint64

	CPU    []cpu.State   // detailed engine, one per core
	BADCO  []badco.State // approximate engine, one per machine
	Uncore uncore.State
}

// Detailed reports whether the checkpoint holds detailed-core state.
func (cp *Checkpoint) Detailed() bool { return len(cp.CPU) > 0 }

// captureShared fills the engine-independent fields from live state.
func (cp *Checkpoint) captureShared(w Workload, policy cache.PolicyName, quota uint64, cores []stepper, reached []bool, quotaCycle []uint64) {
	cp.Workload = append(cp.Workload[:0], w...)
	cp.Policy = policy
	cp.Quota = quota
	cp.Committed = cp.Committed[:0]
	cp.Clocks = cp.Clocks[:0]
	for _, c := range cores {
		cp.Committed = append(cp.Committed, c.Committed())
		cp.Clocks = append(cp.Clocks, c.Now())
	}
	if reached != nil {
		cp.Reached = append(cp.Reached[:0], reached...)
		cp.QuotaCycle = append(cp.QuotaCycle[:0], quotaCycle...)
	}
}

func (cp *Checkpoint) validate(engine string, cores int) error {
	if len(cp.Workload) != cores {
		return fmt.Errorf("multicore: checkpoint workload has %d cores, want %d", len(cp.Workload), cores)
	}
	switch engine {
	case "detailed":
		if len(cp.CPU) != cores {
			return fmt.Errorf("multicore: checkpoint is not a %d-core detailed snapshot", cores)
		}
	case "badco":
		if len(cp.BADCO) != cores {
			return fmt.Errorf("multicore: checkpoint is not a %d-core BADCO snapshot", cores)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Drivers

// runToBoundary advances the cores on the smallest-local-clock-first
// discipline until each has committed at least warmup µops; unlike the
// measured run, a core that crosses the boundary halts (leaves the pick
// set) so the snapshot is taken with every thread at — for the detailed
// model, exactly at — the boundary. The batched loop reproduces the
// per-step schedule of runToBoundaryReference by the same argument as
// runInterleaved: clocks are nondecreasing and only the picked core's
// clock moves, so the pick is stable until it reaches the runner-up.
func runToBoundary(ctx context.Context, cores []stepper, warmup uint64) error {
	n := len(cores)
	done := ctx.Done()
	halted := make([]bool, n)
	clocks := make([]uint64, n)
	remaining := 0
	for i, c := range cores {
		clocks[i] = c.Now()
		if c.Committed() >= warmup {
			halted[i] = true
		} else {
			remaining++
		}
	}
	for batch := 0; remaining > 0; batch++ {
		if done != nil && batch&cancelCheckMask == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		// Lowest-index minimum over the active cores; o is the runner-up.
		m, o := -1, -1
		for i := 0; i < n; i++ {
			if halted[i] {
				continue
			}
			switch {
			case m < 0 || clocks[i] < clocks[m]:
				m, o = i, m
			case o < 0 || clocks[i] < clocks[o]:
				o = i
			}
		}
		limit := clocks[m] + soloChunkCycles
		if o >= 0 {
			limit = clocks[o]
			if m < o {
				limit++
			}
		}
		c := cores[m]
		c.StepUntil(limit, warmup)
		clocks[m] = c.Now()
		if c.Committed() >= warmup {
			halted[m] = true
			remaining--
		}
	}
	return nil
}

// runToBoundaryReference is the per-step executable specification of the
// warmup schedule: step the smallest-clock core that has not yet
// committed warmup µops. The golden tests pin runToBoundary to it.
func runToBoundaryReference(_ context.Context, cores []stepper, warmup uint64) error {
	for {
		m := -1
		for i, c := range cores {
			if c.Committed() >= warmup {
				continue
			}
			if m < 0 || c.Now() < cores[m].Now() {
				m = i
			}
		}
		if m < 0 {
			return nil
		}
		cores[m].Step()
	}
}

// runInterleavedFrom is runInterleaved generalised for restored and
// two-stage runs: per-core absolute commit targets, driver progress
// (reached/quotaCycle) carried in from a checkpoint and mutated in
// place, and an optional periodic capture hook invoked between batches
// whenever the minimum local clock crosses a multiple of `every`
// cycles. Batch boundaries never change the simulated state (StepUntil
// is resumable and reproduces the per-step schedule), so captures are
// always taken at states the per-step schedule passes through.
func runInterleavedFrom(ctx context.Context, cores []stepper, targets []uint64, reached []bool, quotaCycle []uint64, every uint64, capture func() error) error {
	n := len(cores)
	done := ctx.Done()
	remaining := 0
	for _, r := range reached {
		if !r {
			remaining++
		}
	}
	clocks := make([]uint64, n)
	for i, c := range cores {
		clocks[i] = c.Now()
	}
	minClock := func() uint64 {
		min := clocks[0]
		for _, cl := range clocks[1:] {
			if cl < min {
				min = cl
			}
		}
		return min
	}
	var nextCap uint64
	if capture != nil {
		if every == 0 {
			return fmt.Errorf("multicore: checkpoint interval must be positive")
		}
		nextCap = (minClock()/every + 1) * every
	}
	for batch := 0; remaining > 0; batch++ {
		if done != nil && batch&cancelCheckMask == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		m, o := 0, -1
		for i := 1; i < n; i++ {
			switch {
			case clocks[i] < clocks[m]:
				m, o = i, m
			case o < 0 || clocks[i] < clocks[o]:
				o = i
			}
		}
		lim := clocks[m] + soloChunkCycles
		if o >= 0 {
			lim = clocks[o]
			if m < o {
				lim++
			}
		}
		quotaCap := never
		if !reached[m] {
			quotaCap = targets[m]
		}
		c := cores[m]
		c.StepUntil(lim, quotaCap)
		if !reached[m] && c.Committed() >= targets[m] {
			reached[m] = true
			quotaCycle[m] = c.Now()
			remaining--
		}
		clocks[m] = c.Now()
		if capture != nil {
			if min := minClock(); min >= nextCap {
				if err := capture(); err != nil {
					return err
				}
				nextCap = (min/every + 1) * every
			}
		}
	}
	return nil
}

// runInterleavedFromReference is the per-step executable specification
// of runInterleavedFrom (without capture): pick the smallest-clock core,
// step it one µop, record target crossings. The golden tests pin the
// batched continuation driver to it.
func runInterleavedFromReference(_ context.Context, cores []stepper, targets []uint64, reached []bool, quotaCycle []uint64) error {
	remaining := 0
	for _, r := range reached {
		if !r {
			remaining++
		}
	}
	for remaining > 0 {
		min := 0
		for i := 1; i < len(cores); i++ {
			if cores[i].Now() < cores[min].Now() {
				min = i
			}
		}
		c := cores[min]
		c.Step()
		if !reached[min] && c.Committed() >= targets[min] {
			reached[min] = true
			quotaCycle[min] = c.Now()
			remaining--
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Detailed engine

// DetailedWarmup runs the workload's first warmup µops per thread under
// the detailed model and returns the machine frozen at that boundary.
// The checkpoint is the shared prefix of every run that DetailedFrom
// fans out from it.
func DetailedWarmup(ctx context.Context, w Workload, traces TraceSource, policy cache.PolicyName, warmup uint64) (*Checkpoint, error) {
	if warmup == 0 {
		return nil, fmt.Errorf("multicore: zero warmup")
	}
	unc, cores, _, err := buildDetailed(ctx, w, traces, policy, warmup)
	if err != nil {
		return nil, err
	}
	steppers := asSteppers(cores)
	stop := telemetry.FromContext(ctx).Time(phaseWarmup)
	err = runToBoundary(ctx, steppers, warmup)
	stop()
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{}
	cp.captureShared(w, policy, 0, steppers, nil, nil)
	cp.CPU = make([]cpu.State, len(cores))
	for i, c := range cores {
		c.Snapshot(&cp.CPU[i])
	}
	unc.Snapshot(&cp.Uncore)
	return cp, nil
}

// restoreDetailed rebuilds a machine from a detailed checkpoint: fresh
// cores and uncore constructed under the checkpoint's policy (so the
// restored policy metadata matches), state restored, and then — for
// policy fan-out — the LLC policy swapped for a fresh instance of the
// requested one while the warmed cache contents stay.
func restoreDetailed(ctx context.Context, cp *Checkpoint, traces TraceSource, policy cache.PolicyName) (*uncore.Uncore, []*cpu.Core, error) {
	unc, cores, _, err := buildDetailed(ctx, cp.Workload, traces, cp.Policy, never)
	if err != nil {
		return nil, nil, err
	}
	if err := cp.validate("detailed", len(cores)); err != nil {
		return nil, nil, err
	}
	for i, c := range cores {
		c.Restore(&cp.CPU[i])
	}
	unc.Restore(&cp.Uncore)
	if policy != cp.Policy {
		if err := unc.SetPolicy(policy, unc.Config().PolicySeed); err != nil {
			return nil, nil, err
		}
	}
	return unc, cores, nil
}

// DetailedFrom restores a warmup checkpoint and measures quota further
// µops per thread under the given policy (which may differ from the
// warmup policy: the LLC keeps its warmed contents and the replacement
// metadata restarts fresh, exactly as SweepPoliciesDetailed needs).
// Cycles and IPC are relative to the restore point. A zero quota
// defaults to the trace length.
func DetailedFrom(ctx context.Context, cp *Checkpoint, traces TraceSource, policy cache.PolicyName, quota uint64) (Result, error) {
	_, cores, err := restoreDetailed(ctx, cp, traces, policy)
	if err != nil {
		return Result{}, err
	}
	return measureFrom(ctx, cp, asSteppers(cores), policy, quotaOrTrace(ctx, cp, traces, quota))
}

// quotaOrTrace resolves a zero quota to the first benchmark's trace
// length, matching Detailed's default.
func quotaOrTrace(ctx context.Context, cp *Checkpoint, traces TraceSource, quota uint64) uint64 {
	if quota != 0 {
		return quota
	}
	tr, err := traces.Trace(ctx, cp.Workload[0])
	if err != nil || tr == nil {
		return 0
	}
	return uint64(tr.Len())
}

// measureFrom runs the measurement stage from the restored (or live,
// for the uninterrupted two-stage runs) boundary state: each thread's
// target is its boundary commit count plus quota, and its cycle count
// is measured from its boundary clock.
func measureFrom(ctx context.Context, cp *Checkpoint, cores []stepper, policy cache.PolicyName, quota uint64) (Result, error) {
	if quota == 0 {
		return Result{}, fmt.Errorf("multicore: zero quota")
	}
	n := len(cores)
	targets := make([]uint64, n)
	for i := range targets {
		targets[i] = cp.Committed[i] + quota
	}
	reached := make([]bool, n)
	quotaCycle := make([]uint64, n)
	stop := telemetry.FromContext(ctx).Time(phaseMeasure)
	err := runInterleavedFrom(ctx, cores, targets, reached, quotaCycle, 0, nil)
	stop()
	if err != nil {
		return Result{}, err
	}
	cycles := make([]uint64, n)
	for i := range cycles {
		cycles[i] = quotaCycle[i] - cp.Clocks[i]
	}
	return assemble(cp.Workload, policy, cycles, quota), nil
}

// DetailedWithWarmup is the uninterrupted two-stage run: warm to the
// boundary and measure quota µops beyond it, on the same machines with
// no snapshot or restore in between. DetailedWarmup + DetailedFrom
// under the warmup policy produces bit-identical Results (the golden
// tests pin this); a zero warmup is exactly Detailed.
func DetailedWithWarmup(ctx context.Context, w Workload, traces TraceSource, policy cache.PolicyName, warmup, quota uint64) (Result, error) {
	if warmup == 0 {
		return Detailed(ctx, w, traces, policy, quota)
	}
	_, cores, quota, err := buildDetailed(ctx, w, traces, policy, quota)
	if err != nil {
		return Result{}, err
	}
	steppers := asSteppers(cores)
	stop := telemetry.FromContext(ctx).Time(phaseWarmup)
	err = runToBoundary(ctx, steppers, warmup)
	stop()
	if err != nil {
		return Result{}, err
	}
	cp := &Checkpoint{}
	cp.captureShared(w, policy, 0, steppers, nil, nil)
	return measureFrom(ctx, cp, steppers, policy, quota)
}

// DetailedCheckpointed is Detailed with periodic snapshots: every
// `every` cycles of the minimum local clock, the whole machine is
// captured and handed to sink. A sink error aborts the run. The
// snapshots restore through DetailedResume to the same Result the
// uninterrupted run returns.
func DetailedCheckpointed(ctx context.Context, w Workload, traces TraceSource, policy cache.PolicyName, quota, every uint64, sink func(*Checkpoint) error) (Result, error) {
	unc, cores, quota, err := buildDetailed(ctx, w, traces, policy, quota)
	if err != nil {
		return Result{}, err
	}
	steppers := asSteppers(cores)
	n := len(cores)
	targets := make([]uint64, n)
	for i := range targets {
		targets[i] = quota
	}
	reached := make([]bool, n)
	quotaCycle := make([]uint64, n)
	capture := func() error {
		cp := &Checkpoint{}
		cp.captureShared(w, policy, quota, steppers, reached, quotaCycle)
		cp.CPU = make([]cpu.State, n)
		for i, c := range cores {
			c.Snapshot(&cp.CPU[i])
		}
		unc.Snapshot(&cp.Uncore)
		return sink(cp)
	}
	if err := runInterleavedFrom(ctx, steppers, targets, reached, quotaCycle, every, capture); err != nil {
		return Result{}, err
	}
	return assemble(w, policy, quotaCycle, quota), nil
}

// DetailedResume continues an interrupted run from its checkpoint to
// the original quota and returns the Result the uninterrupted run
// would have returned, bit-identically: the schedule is memoryless
// given the restored clocks, committed counts and machine state, and
// the crossing cycles of already-finished threads ride along in the
// checkpoint.
func DetailedResume(ctx context.Context, cp *Checkpoint, traces TraceSource) (Result, error) {
	if cp.Quota == 0 {
		return Result{}, fmt.Errorf("multicore: checkpoint has no quota (warmup checkpoints resume via DetailedFrom)")
	}
	_, cores, err := restoreDetailed(ctx, cp, traces, cp.Policy)
	if err != nil {
		return Result{}, err
	}
	n := len(cores)
	targets := make([]uint64, n)
	for i := range targets {
		targets[i] = cp.Quota
	}
	reached := append([]bool(nil), cp.Reached...)
	quotaCycle := append([]uint64(nil), cp.QuotaCycle...)
	if err := runInterleavedFrom(ctx, asSteppers(cores), targets, reached, quotaCycle, 0, nil); err != nil {
		return Result{}, err
	}
	return assemble(cp.Workload, cp.Policy, quotaCycle, cp.Quota), nil
}

// SweepPoliciesDetailed measures the workload under every policy. With a
// zero warmup it runs len(policies) independent simulations — exactly
// the results of calling Detailed per policy. With a positive warmup it
// warms once under policies[0], snapshots, and fans each policy out
// from the shared prefix in parallel, so the warmup cost is paid once
// instead of len(policies) times.
func SweepPoliciesDetailed(ctx context.Context, w Workload, traces TraceSource, policies []cache.PolicyName, warmup, quota uint64) ([]Result, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("multicore: no policies")
	}
	results := make([]Result, len(policies))
	errs := make([]error, len(policies))
	if warmup == 0 {
		if err := RunBounded(ctx, len(policies), func(i int) {
			results[i], errs[i] = Detailed(ctx, w, traces, policies[i], quota)
		}); err != nil {
			return nil, err
		}
	} else {
		cp, err := DetailedWarmup(ctx, w, traces, policies[0], warmup)
		if err != nil {
			return nil, err
		}
		// Restores only read the checkpoint, so the fan-out shares it.
		if err := RunBounded(ctx, len(policies), func(i int) {
			results[i], errs[i] = DetailedFrom(ctx, cp, traces, policies[i], quota)
		}); err != nil {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ---------------------------------------------------------------------------
// Approximate engine

// ApproximateWarmup is DetailedWarmup for BADCO machines. A machine
// halts at its first node boundary at or beyond warmup (BADCO commits
// node-sized chunks), so the boundary may overshoot by a few µops; the
// overshoot is recorded in the checkpoint's Committed counts and
// ApproximateFrom measures relative to them.
func ApproximateWarmup(ctx context.Context, w Workload, models map[string]*badco.Model, policy cache.PolicyName, warmup uint64) (*Checkpoint, error) {
	if warmup == 0 {
		return nil, fmt.Errorf("multicore: zero warmup")
	}
	unc, machines, _, err := buildApproximate(w, models, policy, warmup)
	if err != nil {
		return nil, err
	}
	steppers := make([]stepper, len(machines))
	for i, ma := range machines {
		steppers[i] = badcoStepper{ma}
	}
	stop := telemetry.FromContext(ctx).Time(phaseWarmup)
	err = runToBoundary(ctx, steppers, warmup)
	stop()
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{}
	cp.captureShared(w, policy, 0, steppers, nil, nil)
	cp.BADCO = make([]badco.State, len(machines))
	for i, ma := range machines {
		ma.Snapshot(&cp.BADCO[i])
	}
	unc.Snapshot(&cp.Uncore)
	return cp, nil
}

// ApproximateFrom is DetailedFrom for BADCO machines.
func ApproximateFrom(ctx context.Context, cp *Checkpoint, models map[string]*badco.Model, policy cache.PolicyName, quota uint64) (Result, error) {
	unc, machines, quota, err := buildApproximate(cp.Workload, models, cp.Policy, quota)
	if err != nil {
		return Result{}, err
	}
	if err := cp.validate("badco", len(machines)); err != nil {
		return Result{}, err
	}
	for i, ma := range machines {
		ma.Restore(&cp.BADCO[i])
	}
	unc.Restore(&cp.Uncore)
	if policy != cp.Policy {
		if err := unc.SetPolicy(policy, unc.Config().PolicySeed); err != nil {
			return Result{}, err
		}
	}
	steppers := make([]stepper, len(machines))
	for i, ma := range machines {
		steppers[i] = badcoStepper{ma}
	}
	return measureFrom(ctx, cp, steppers, policy, quota)
}

// ApproximateWithWarmup is the uninterrupted two-stage BADCO run (see
// DetailedWithWarmup); a zero warmup is exactly Approximate.
func ApproximateWithWarmup(ctx context.Context, w Workload, models map[string]*badco.Model, policy cache.PolicyName, warmup, quota uint64) (Result, error) {
	if warmup == 0 {
		return Approximate(ctx, w, models, policy, quota)
	}
	_, machines, quota, err := buildApproximate(w, models, policy, quota)
	if err != nil {
		return Result{}, err
	}
	steppers := make([]stepper, len(machines))
	for i, ma := range machines {
		steppers[i] = badcoStepper{ma}
	}
	stop := telemetry.FromContext(ctx).Time(phaseWarmup)
	err = runToBoundary(ctx, steppers, warmup)
	stop()
	if err != nil {
		return Result{}, err
	}
	cp := &Checkpoint{}
	cp.captureShared(w, policy, 0, steppers, nil, nil)
	return measureFrom(ctx, cp, steppers, policy, quota)
}
