package multicore

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"mcbench/internal/badco"
	"mcbench/internal/cache"
	"mcbench/internal/trace"
)

const testLen = 20000

var (
	testTraces TraceMap
	testModels map[string]*badco.Model
)

func traces(t *testing.T) TraceMap {
	t.Helper()
	if testTraces == nil {
		testTraces = trace.GenerateSuite(testLen)
	}
	return testTraces
}

func models(t *testing.T) map[string]*badco.Model {
	t.Helper()
	if testModels == nil {
		trs := traces(t)
		names := []string{"mcf", "povray", "gcc", "libquantum", "hmmer", "soplex", "astar", "bzip2"}
		m, err := BuildModels(context.Background(), trs, names, badco.DefaultBuildConfig())
		if err != nil {
			t.Fatal(err)
		}
		testModels = m
	}
	return testModels
}

func TestDetailedSingleVsPair(t *testing.T) {
	trs := traces(t)
	solo, err := Detailed(context.Background(), Workload{"mcf"}, trs, cache.LRU, 0)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := Detailed(context.Background(), Workload{"mcf", "soplex"}, trs, cache.LRU, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.IPC) != 1 || len(pair.IPC) != 2 {
		t.Fatalf("IPC lengths %d/%d", len(solo.IPC), len(pair.IPC))
	}
	// Two memory-hungry co-runners must hurt each other: mcf's IPC with a
	// co-runner cannot exceed its solo IPC.
	if pair.IPC[0] > solo.IPC[0]*1.02 {
		t.Errorf("mcf IPC with co-runner %.4f above solo %.4f", pair.IPC[0], solo.IPC[0])
	}
}

func TestDetailedErrors(t *testing.T) {
	trs := traces(t)
	if _, err := Detailed(context.Background(), Workload{}, trs, cache.LRU, 0); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Detailed(context.Background(), Workload{"nosuch"}, trs, cache.LRU, 0); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Detailed(context.Background(), Workload{"mcf"}, trs, "NOPOL", 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestDetailedDeterminism(t *testing.T) {
	trs := traces(t)
	a, err := Detailed(context.Background(), Workload{"gcc", "mcf"}, trs, cache.DIP, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Detailed(context.Background(), Workload{"gcc", "mcf"}, trs, cache.DIP, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("nondeterministic IPC on core %d: %g vs %g", i, a.IPC[i], b.IPC[i])
		}
	}
}

func TestDuplicateBenchmarksGetDistinctPages(t *testing.T) {
	trs := traces(t)
	r, err := Detailed(context.Background(), Workload{"bzip2", "bzip2"}, trs, cache.LRU, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Identical threads on symmetric cores should have similar IPC.
	if r.IPC[0] <= 0 || r.IPC[1] <= 0 {
		t.Fatal("zero IPC")
	}
	ratio := r.IPC[0] / r.IPC[1]
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("replicated benchmark IPCs diverge: %.3f vs %.3f", r.IPC[0], r.IPC[1])
	}
}

func TestApproximateMatchesDetailedRanking(t *testing.T) {
	trs := traces(t)
	mods := models(t)
	w := Workload{"mcf", "povray"}
	det, err := Detailed(context.Background(), w, trs, cache.LRU, 0)
	if err != nil {
		t.Fatal(err)
	}
	app, err := Approximate(context.Background(), w, mods, cache.LRU, 0)
	if err != nil {
		t.Fatal(err)
	}
	// povray (compute-bound) must be the faster thread in both simulators.
	if (det.IPC[1] > det.IPC[0]) != (app.IPC[1] > app.IPC[0]) {
		t.Errorf("simulators disagree on thread ranking: det %v, approx %v", det.IPC, app.IPC)
	}
	// And per-thread CPI should be in the same ballpark.
	for i := range w {
		relErr := math.Abs(app.IPC[i]-det.IPC[i]) / det.IPC[i]
		if relErr > 0.4 {
			t.Errorf("core %d (%s): approx IPC %.3f vs detailed %.3f (%.0f%% off)",
				i, w[i], app.IPC[i], det.IPC[i], relErr*100)
		}
	}
}

func TestApproximateErrors(t *testing.T) {
	mods := models(t)
	if _, err := Approximate(context.Background(), Workload{}, mods, cache.LRU, 0); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Approximate(context.Background(), Workload{"nosuch"}, mods, cache.LRU, 0); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSweepApproximate(t *testing.T) {
	mods := models(t)
	ws := []Workload{
		{"mcf", "povray"},
		{"gcc", "gcc"},
		{"libquantum", "hmmer"},
		{"soplex", "astar"},
	}
	rs, err := SweepApproximate(context.Background(), ws, mods, cache.DRRIP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(ws) {
		t.Fatalf("%d results for %d workloads", len(rs), len(ws))
	}
	for i, r := range rs {
		if r.Workload.String() != ws[i].String() {
			t.Errorf("result %d is for %v, want %v", i, r.Workload, ws[i])
		}
		for c, ipc := range r.IPC {
			if ipc <= 0 || ipc > 4 {
				t.Errorf("workload %d core %d IPC %g implausible", i, c, ipc)
			}
		}
	}
	// Sweep must be deterministic despite parallelism.
	rs2, err := SweepApproximate(context.Background(), ws, mods, cache.DRRIP, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		for c := range rs[i].IPC {
			if rs[i].IPC[c] != rs2[i].IPC[c] {
				t.Fatalf("sweep nondeterministic at workload %d core %d", i, c)
			}
		}
	}
}

func TestSweepDetailed(t *testing.T) {
	trs := traces(t)
	ws := []Workload{{"hmmer", "povray"}, {"mcf", "mcf"}}
	rs, err := SweepDetailed(context.Background(), ws, trs, cache.FIFO, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results", len(rs))
	}
	// hmmer+povray (cache friendly) should beat mcf+mcf throughput-wise.
	sum0 := rs[0].IPC[0] + rs[0].IPC[1]
	sum1 := rs[1].IPC[0] + rs[1].IPC[1]
	if sum0 <= sum1 {
		t.Errorf("friendly pair IPC %.3f not above thrashing pair %.3f", sum0, sum1)
	}
}

func TestPolicyAffectsThroughput(t *testing.T) {
	// LRU vs RND on a cache-friendly pair: policies must make a
	// measurable difference somewhere in the matrix (not all equal).
	mods := models(t)
	w := Workload{"soplex", "bzip2"}
	var ipcs []float64
	for _, pol := range cache.PaperPolicies() {
		r, err := Approximate(context.Background(), w, mods, pol, 0)
		if err != nil {
			t.Fatal(err)
		}
		ipcs = append(ipcs, r.IPC[0]+r.IPC[1])
	}
	allEqual := true
	for _, v := range ipcs[1:] {
		if math.Abs(v-ipcs[0]) > 1e-9 {
			allEqual = false
		}
	}
	if allEqual {
		t.Errorf("all five policies produced identical throughput %v", ipcs)
	}
}

func TestWorkloadString(t *testing.T) {
	w := Workload{"a", "b", "b"}
	if got := w.String(); got != "a+b+b" {
		t.Errorf("String = %q", got)
	}
}

func TestResultCPI(t *testing.T) {
	r := Result{IPC: []float64{2, 0}}
	if got := r.CPI(0); got != 0.5 {
		t.Errorf("CPI = %g", got)
	}
	// Zero IPC means the core never committed an instruction: its CPI is
	// infinite, consistently with the 1/IPC identity, rather than 0
	// (which would read as "infinitely fast").
	if got := r.CPI(1); !math.IsInf(got, 1) {
		t.Errorf("CPI of zero IPC = %g, want +Inf", got)
	}
}

func TestQuotaHonored(t *testing.T) {
	trs := traces(t)
	r, err := Detailed(context.Background(), Workload{"hmmer"}, trs, cache.LRU, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 5000 {
		t.Errorf("quota %d, want 5000", r.Instructions)
	}
	full, _ := Detailed(context.Background(), Workload{"hmmer"}, trs, cache.LRU, 0)
	if r.Cycles[0] >= full.Cycles[0] {
		t.Errorf("5000-op quota took %d cycles, full trace %d", r.Cycles[0], full.Cycles[0])
	}
}

func TestRunBoundedLimitsConcurrency(t *testing.T) {
	const n = 200
	bound := int64(maxParallel())
	var live, peak, calls atomic.Int64
	RunBounded(context.Background(), n, func(i int) {
		calls.Add(1)
		cur := live.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		live.Add(-1)
	})
	if calls.Load() != n {
		t.Fatalf("ran %d of %d tasks", calls.Load(), n)
	}
	if p := peak.Load(); p > bound {
		t.Errorf("peak concurrency %d above bound %d", p, bound)
	}
}

func TestRunBoundedEmpty(t *testing.T) {
	ran := false
	RunBounded(context.Background(), 0, func(int) { ran = true })
	if ran {
		t.Error("fn invoked for n=0")
	}
}
