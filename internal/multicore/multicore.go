// Package multicore runs multiprogrammed workloads: K independent threads
// (one benchmark each) on K cores sharing one uncore, using either the
// detailed core model (package cpu) or BADCO machines (package badco).
//
// Scheduling follows the paper's setup: cores interleave on a
// smallest-local-clock-first discipline (approximating the round-robin
// uncore arbitration), each thread that finishes its instruction quota is
// restarted until every thread has executed at least the quota, and IPC
// is measured on each thread's first quota of instructions.
package multicore

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"mcbench/internal/badco"
	"mcbench/internal/cache"
	"mcbench/internal/cpu"
	"mcbench/internal/telemetry"
	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// Phase names charged to a telemetry span carried by the context (see
// telemetry.NewContext). Hooks sit at phase boundaries — trace
// resolution, model building, warmup, fast-forward, the measured
// window — never inside the per-µop loops, so an attached span costs
// a mutex op per phase and an absent one (nil) costs a context lookup.
const (
	phaseTraceLoad   = "trace_load"
	phaseModelBuild  = "model_build"
	phaseWarmup      = "warmup"
	phaseFastForward = "fast_forward"
	phaseMeasure     = "measure"
)

// TraceSource resolves benchmark names to traces at the simulation
// boundary. It is satisfied by bench.Provider (a bench.Source bound to a
// trace length) and by TraceMap; implementations must be safe for
// concurrent use. The drivers below resolve whole workloads up front and
// then run on bare *trace.Trace values, so the allocation-free kernel
// hot paths never see the indirection.
type TraceSource interface {
	// Trace returns the named benchmark's trace, building or loading it
	// on first use.
	Trace(ctx context.Context, name string) (*trace.Trace, error)
	// Release hints that the caller is done with the named benchmark's
	// trace; a memoizing source drops it to bound resident memory.
	Release(name string)
}

// TraceMap adapts an eagerly-built trace map to the TraceSource
// boundary, for callers that already hold all their traces (tests, the
// co-phase machinery). Release is a no-op.
type TraceMap map[string]*trace.Trace

// Trace looks the benchmark up in the map.
func (m TraceMap) Trace(_ context.Context, name string) (*trace.Trace, error) {
	tr, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("multicore: no trace for benchmark %q", name)
	}
	return tr, nil
}

// Release is a no-op: the map owns its traces.
func (m TraceMap) Release(string) {}

// Workload names the benchmarks co-scheduled on the K cores; duplicates
// are allowed (the same benchmark may run on several cores).
type Workload []string

// String formats the workload compactly.
func (w Workload) String() string {
	s := ""
	for i, b := range w {
		if i > 0 {
			s += "+"
		}
		s += b
	}
	return s
}

// Result is the outcome of simulating one workload under one policy.
type Result struct {
	Workload Workload
	Policy   cache.PolicyName
	// IPC per core, measured on the first quota instructions of each
	// thread.
	IPC []float64
	// Cycles per core at which the quota was reached.
	Cycles []uint64
	// Instructions is the per-thread quota.
	Instructions uint64
}

// CPI returns the per-core cycles per instruction. A core with zero IPC
// (it never committed an instruction) has infinite CPI.
func (r Result) CPI(core int) float64 {
	if r.IPC[core] == 0 {
		return math.Inf(1)
	}
	return 1 / r.IPC[core]
}

// stepper abstracts the two core models for the interleaving driver.
type stepper interface {
	Step() uint64
	StepUntil(limit, quota uint64) uint64
	Now() uint64
	Committed() uint64
}

// driver advances a set of cores until each has committed quota µops and
// returns the cycle at which each crossed it. A driver returns early with
// ctx.Err() when the context is cancelled mid-simulation.
type driver func(ctx context.Context, cores []stepper, quota uint64) ([]uint64, error)

// never is a clock/quota bound that no simulation reaches.
const never = ^uint64(0)

// cancelCheckMask throttles context polling in the batch loop: the
// cancellation check (a non-blocking channel receive) runs once every
// cancelCheckMask+1 batches, keeping it off the per-batch fast path
// while still bounding the reaction latency to microseconds.
const cancelCheckMask = 1023

// soloChunkCycles is the clock-batch size of single-core simulations:
// with no other core to bound a batch, the driver runs the core in
// fixed-size clock windows so cancellation stays responsive. StepUntil
// is resumable, so chunking does not change results.
const soloChunkCycles = 1 << 18

// runInterleaved advances the cores on the smallest-local-clock-first
// discipline until every core has committed at least quota instructions,
// then returns each core's quota completion cycle.
//
// It produces the same schedule as the per-step reference driver
// (runInterleavedReference) but dispatches whole batches: a core's local
// clock never decreases and the other cores' clocks cannot change while
// it runs, so the reference loop would keep re-picking the current
// minimum-clock core until its clock reaches the runner-up's. StepUntil
// runs that whole stretch as one tight monomorphic loop inside the core
// model — one interface dispatch and one scheduling decision per batch
// instead of per simulated µop. Between batches a single pass over the
// cached clocks carries the pick and the runner-up through a 2-element
// tournament, instead of a full rescan per µop.
func runInterleaved(ctx context.Context, cores []stepper, quota uint64) ([]uint64, error) {
	n := len(cores)
	done := ctx.Done()
	quotaCycle := make([]uint64, n)
	if n == 1 {
		// A single core is always the pick: run to the quota in clock
		// chunks so cancellation can interrupt a long solo run.
		c := cores[0]
		for c.Committed() < quota {
			if done != nil {
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
			c.StepUntil(c.Now()+soloChunkCycles, quota)
		}
		quotaCycle[0] = c.Now()
		return quotaCycle, nil
	}
	reached := make([]bool, n)
	remaining := n
	clocks := make([]uint64, n)
	for i, c := range cores {
		clocks[i] = c.Now()
	}
	for batch := 0; remaining > 0; batch++ {
		if done != nil && batch&cancelCheckMask == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		// One pass, ties to the lower index: m is the core the per-step
		// driver would pick, o the runner-up it would pick next.
		m, o := 0, -1
		for i := 1; i < n; i++ {
			switch {
			case clocks[i] < clocks[m]:
				m, o = i, m
			case o < 0 || clocks[i] < clocks[o]:
				o = i
			}
		}
		// Core m keeps the pick while its clock is below the runner-up's
		// — or equal to it, when m wins the lower-index tie-break.
		limit := clocks[o]
		if m < o {
			limit++
		}
		// A core that has not crossed the quota stops its batch at the
		// crossing so the crossing cycle is captured; afterwards it keeps
		// running (restarted) until all cores reach the quota, as in the
		// paper.
		quotaCap := never
		if !reached[m] {
			quotaCap = quota
		}
		c := cores[m]
		c.StepUntil(limit, quotaCap)
		if !reached[m] && c.Committed() >= quota {
			reached[m] = true
			quotaCycle[m] = c.Now()
			remaining--
		}
		clocks[m] = c.Now()
	}
	return quotaCycle, nil
}

// runInterleavedReference is the original per-step driver: pick the core
// with the smallest local clock, step it one µop, repeat. It is retained
// as the executable specification of the schedule; the golden
// determinism test asserts the batched driver reproduces its results
// bit-identically. It ignores the context (it only runs in tests).
func runInterleavedReference(_ context.Context, cores []stepper, quota uint64) ([]uint64, error) {
	n := len(cores)
	quotaCycle := make([]uint64, n)
	reached := make([]bool, n)
	remaining := n
	for remaining > 0 {
		// Pick the unfinished-or-not core with the smallest local clock.
		// Finished threads keep running (restarted) until all reach the
		// quota, as in the paper, so they stay in the pick set.
		min := 0
		for i := 1; i < n; i++ {
			if cores[i].Now() < cores[min].Now() {
				min = i
			}
		}
		c := cores[min]
		c.Step()
		if !reached[min] && c.Committed() >= quota {
			reached[min] = true
			quotaCycle[min] = c.Now()
			remaining--
		}
	}
	return quotaCycle, nil
}

// Detailed simulates the workload with the detailed core model under the
// given LLC policy. quota is the per-thread instruction count (commonly
// the trace length). Traces are resolved through the source at this
// boundary — lazily built on first use — and are not released here: the
// caller owns the retention policy. A cancelled context aborts the
// simulation and returns ctx.Err().
func Detailed(ctx context.Context, w Workload, traces TraceSource, policy cache.PolicyName, quota uint64) (Result, error) {
	return detailedWith(ctx, w, traces, policy, quota, runInterleaved)
}

// detailedWith is Detailed with an explicit driver, so the golden test
// can run the reference per-step driver through the identical
// construction path.
func detailedWith(ctx context.Context, w Workload, traces TraceSource, policy cache.PolicyName, quota uint64, drive driver) (Result, error) {
	_, cores, quota, err := buildDetailed(ctx, w, traces, policy, quota)
	if err != nil {
		return Result{}, err
	}
	stop := telemetry.FromContext(ctx).Time(phaseMeasure)
	cycles, err := drive(ctx, asSteppers(cores), quota)
	stop()
	if err != nil {
		return Result{}, err
	}
	return assemble(w, policy, cycles, quota), nil
}

// buildDetailed constructs the shared uncore and one detailed core per
// workload slot. A zero quota defaults to the first trace's length. It is
// the single construction path for plain, warmup and restored detailed
// simulations, so they cannot drift apart.
func buildDetailed(ctx context.Context, w Workload, traces TraceSource, policy cache.PolicyName, quota uint64) (*uncore.Uncore, []*cpu.Core, uint64, error) {
	if len(w) == 0 {
		return nil, nil, 0, fmt.Errorf("multicore: empty workload")
	}
	unc, err := uncore.New(uncore.ConfigFor(len(w), policy))
	if err != nil {
		return nil, nil, 0, err
	}
	cores := make([]*cpu.Core, len(w))
	sp := telemetry.FromContext(ctx)
	for i, name := range w {
		stop := sp.Time(phaseTraceLoad)
		tr, err := traces.Trace(ctx, name)
		stop()
		if err != nil {
			return nil, nil, 0, err
		}
		if quota == 0 {
			quota = uint64(tr.Len())
		}
		core, err := cpu.New(i, cpu.DefaultConfig(), tr, unc)
		if err != nil {
			return nil, nil, 0, err
		}
		cores[i] = core
	}
	return unc, cores, quota, nil
}

func asSteppers[T stepper](cores []T) []stepper {
	s := make([]stepper, len(cores))
	for i, c := range cores {
		s[i] = c
	}
	return s
}

// badcoStepper adapts a BADCO machine to the quota-based driver: the
// machine commits in node-sized chunks, and its committed count is exact
// at iteration boundaries, which is where quotas land (quota = trace
// length).
type badcoStepper struct{ *badco.Machine }

// Approximate runs the workload with BADCO machines sharing a real
// uncore. models maps benchmark name to its behavioural model; quota must
// be a multiple of the model trace length (0 means one trace length). A
// cancelled context aborts the simulation and returns ctx.Err().
func Approximate(ctx context.Context, w Workload, models map[string]*badco.Model, policy cache.PolicyName, quota uint64) (Result, error) {
	return approximateWith(ctx, w, models, policy, quota, runInterleaved)
}

// approximateWith is Approximate with an explicit driver (see
// detailedWith).
func approximateWith(ctx context.Context, w Workload, models map[string]*badco.Model, policy cache.PolicyName, quota uint64, drive driver) (Result, error) {
	_, machines, quota, err := buildApproximate(w, models, policy, quota)
	if err != nil {
		return Result{}, err
	}
	cores := make([]stepper, len(machines))
	for i, ma := range machines {
		cores[i] = badcoStepper{ma}
	}
	stop := telemetry.FromContext(ctx).Time(phaseMeasure)
	cycles, err := drive(ctx, cores, quota)
	stop()
	if err != nil {
		return Result{}, err
	}
	return assemble(w, policy, cycles, quota), nil
}

// buildApproximate is buildDetailed's BADCO counterpart.
func buildApproximate(w Workload, models map[string]*badco.Model, policy cache.PolicyName, quota uint64) (*uncore.Uncore, []*badco.Machine, uint64, error) {
	if len(w) == 0 {
		return nil, nil, 0, fmt.Errorf("multicore: empty workload")
	}
	unc, err := uncore.New(uncore.ConfigFor(len(w), policy))
	if err != nil {
		return nil, nil, 0, err
	}
	machines := make([]*badco.Machine, len(w))
	for i, name := range w {
		m, ok := models[name]
		if !ok {
			return nil, nil, 0, fmt.Errorf("multicore: no model for benchmark %q", name)
		}
		if quota == 0 {
			quota = uint64(m.TraceLen)
		}
		ma, err := badco.NewMachine(i, m, unc)
		if err != nil {
			return nil, nil, 0, err
		}
		machines[i] = ma
	}
	return unc, machines, quota, nil
}

func assemble(w Workload, policy cache.PolicyName, cycles []uint64, quota uint64) Result {
	r := Result{
		Workload:     append(Workload(nil), w...),
		Policy:       policy,
		IPC:          make([]float64, len(w)),
		Cycles:       cycles,
		Instructions: quota,
	}
	for i, cyc := range cycles {
		if cyc > 0 {
			r.IPC[i] = float64(quota) / float64(cyc)
		}
	}
	return r
}

// SweepResult couples a workload index with its simulation result.
type SweepResult struct {
	Index  int
	Result Result
}

// SweepApproximate simulates many workloads with BADCO in parallel across
// CPU cores (each workload simulation is independent and deterministic).
// The returned slice is indexed like workloads. Cancelling the context
// stops dispatching new workloads, interrupts the running ones, and
// returns ctx.Err().
func SweepApproximate(ctx context.Context, workloads []Workload, models map[string]*badco.Model, policy cache.PolicyName, quota uint64) ([]Result, error) {
	results := make([]Result, len(workloads))
	errs := make([]error, len(workloads))
	if err := RunBounded(ctx, len(workloads), func(i int) {
		results[i], errs[i] = Approximate(ctx, workloads[i], models, policy, quota)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// SweepDetailed simulates many workloads with the detailed model in
// parallel across CPU cores. Traces resolve lazily through the source
// (concurrent workloads sharing a benchmark share one build) and stay
// resident for the caller to release: a sweep touches each distinct
// benchmark many times, so releasing per workload would thrash.
func SweepDetailed(ctx context.Context, workloads []Workload, traces TraceSource, policy cache.PolicyName, quota uint64) ([]Result, error) {
	results := make([]Result, len(workloads))
	errs := make([]error, len(workloads))
	if err := RunBounded(ctx, len(workloads), func(i int) {
		results[i], errs[i] = Detailed(ctx, workloads[i], traces, policy, quota)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// simSem bounds concurrent simulation work process-wide. All sweeps
// draw slots from this one semaphore, so campaign-level parallelism
// (several sweeps warmed at once) composes with per-sweep parallelism
// without multiplying: total live simulations stay at maxParallel()
// rather than workers x maxParallel().
var simSem = make(chan struct{}, maxParallel())

// RunBounded invokes fn(i) for every i in [0, n), drawing on the shared
// process-wide simulation budget. The slot is acquired before the
// goroutine is spawned, so at no point do more goroutines exist than may
// run — a sweep over thousands of workloads never piles up idle
// goroutines waiting for a slot. fn must not call RunBounded itself
// (slot-holders waiting on slots would deadlock).
//
// Cancelling the context stops dispatching new indices; RunBounded then
// waits for the already-running fn calls (which should observe the same
// context) before returning ctx.Err(). It never leaks goroutines.
func RunBounded(ctx context.Context, n int, fn func(int)) error {
	var wg sync.WaitGroup
	done := ctx.Done()
	var err error
	for i := 0; i < n; i++ {
		if done == nil {
			simSem <- struct{}{}
		} else {
			// Check cancellation before contending for a slot: a select
			// with both cases ready picks randomly, and a cancelled
			// campaign must dispatch nothing further.
			select {
			case <-done:
				err = ctx.Err()
			default:
			}
			if err == nil {
				select {
				case <-done:
					err = ctx.Err()
				case simSem <- struct{}{}:
				}
			}
			if err != nil {
				break
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-simSem }()
			fn(i)
		}(i)
	}
	wg.Wait()
	// Only cancellation observed during dispatch fails the call: if every
	// index was dispatched and ran, the work is complete regardless of a
	// cancellation that raced the finish (an interrupted fn surfaces its
	// own ctx error through the caller's per-index results). Discarding a
	// fully computed sweep here would force an interrupted-then-resumed
	// campaign to redo work it already finished.
	return err
}

// BuildModels constructs BADCO models for the named benchmarks, in
// parallel. It is the "one person-month of model building" step of the
// paper, automated. Each benchmark's trace is resolved through the
// source just before its two calibration runs and released right after
// its model is built, so peak trace memory tracks the in-flight build
// parallelism — O(GOMAXPROCS) traces — instead of the whole benchmark
// population (the models themselves are orders of magnitude smaller
// than the traces they summarise).
func BuildModels(ctx context.Context, traces TraceSource, names []string, cfg badco.BuildConfig) (map[string]*badco.Model, error) {
	built := make([]*badco.Model, len(names))
	errs := make([]error, len(names))
	sp := telemetry.FromContext(ctx)
	if err := RunBounded(ctx, len(names), func(i int) {
		stop := sp.Time(phaseTraceLoad)
		tr, err := traces.Trace(ctx, names[i])
		stop()
		if err != nil {
			errs[i] = err
			return
		}
		defer traces.Release(names[i])
		defer sp.Time(phaseModelBuild)()
		built[i], errs[i] = badco.Build(tr, cfg)
	}); err != nil {
		return nil, err
	}
	models := make(map[string]*badco.Model, len(names))
	for i, name := range names {
		if errs[i] != nil {
			return nil, fmt.Errorf("multicore: building model %s: %w", name, errs[i])
		}
		models[name] = built[i]
	}
	return models, nil
}
