// Sampled detailed simulation (SMARTS-style systematic sampling). A
// full detailed run of a long trace is unaffordable; sampling measures
// only a short detailed window out of every sampling unit and
// fast-forwards the gap under the functional-warming mode of the
// detailed core (state updates without timing). Each thread's unit is
// laid out end-aligned:
//
//	|--- fast-forward U-W-D ---|-- warmup W --|-- measure D --|
//
// so the measured window ends exactly at a unit boundary. The warmup
// stretch runs the full detailed model to refill the timing state
// (pipeline occupancy, MSHRs, bus bookings) that fast-forwarding does
// not maintain; the per-window IPCs then aggregate into a mean with a
// Student-t confidence interval and coefficient of variation — an
// estimate with stated precision instead of an exact-but-unaffordable
// number. This is the repo's third simulation fidelity, between
// exact-detailed and BADCO.
package multicore

import (
	"context"
	"fmt"

	"mcbench/internal/cache"
	"mcbench/internal/cpu"
	"mcbench/internal/stats"
	"mcbench/internal/telemetry"
)

// SampledConfidence is the confidence level of the interval reported by
// sampled runs.
const SampledConfidence = 0.95

// SamplingSpec configures systematic sampling. The zero value means
// "exact run, no sampling" (Enabled reports false), so it can ride
// along every existing params/request struct without changing their
// meaning. The struct is comparable and participates in memo and dedup
// identities: a sampled result must never satisfy a request for an
// exact one, or vice versa.
type SamplingSpec struct {
	// Unit is the sampling unit U: one window is measured out of every
	// Unit µops per thread. Zero disables sampling.
	Unit uint64
	// Window is the detailed measurement window D (µops per thread).
	Window uint64
	// Warmup is the detailed warmup W run before each window (µops per
	// thread) to refill the timing state the fast-forward path skips.
	Warmup uint64
	// Warm bounds the functional-warming stretch per gap: only the last
	// Warm µops of each inter-sample gap run under the functional path;
	// everything earlier is skipped outright with no state updates
	// (Core.Skip, O(1) whatever the distance). Zero warms the entire gap
	// — the most accurate setting, but its cost still scales with trace
	// length. A bounded Warm makes the work per sampling unit constant,
	// which is where the sublinear long-trace speedup comes from; the
	// caches tolerate it because a window's hit rate is governed by
	// recency, and the warming stretch re-establishes the recent
	// insertions while older cache contents survive the skip untouched.
	Warm uint64
}

// Enabled reports whether the spec asks for sampling.
func (s SamplingSpec) Enabled() bool { return s.Unit > 0 }

// Validate checks the spec's internal consistency. The zero (disabled)
// spec is valid.
func (s SamplingSpec) Validate() error {
	if !s.Enabled() {
		if s.Window != 0 || s.Warmup != 0 || s.Warm != 0 {
			return fmt.Errorf("multicore: sampling window/warmup set without a unit")
		}
		return nil
	}
	if s.Window == 0 {
		return fmt.Errorf("multicore: sampling window must be positive")
	}
	if s.Warmup+s.Window > s.Unit {
		return fmt.Errorf("multicore: sampling warmup %d + window %d exceed unit %d", s.Warmup, s.Window, s.Unit)
	}
	if s.Warm > s.Unit-s.Warmup-s.Window {
		return fmt.Errorf("multicore: sampling warm %d exceeds gap %d", s.Warm, s.Unit-s.Warmup-s.Window)
	}
	return nil
}

// String formats the spec compactly (also its identity form in cache
// keys): "u<unit>d<window>w<warmup>" plus "f<warm>" when the warming
// stretch is bounded, or "exact" when disabled.
func (s SamplingSpec) String() string {
	if !s.Enabled() {
		return "exact"
	}
	if s.Warm > 0 {
		return fmt.Sprintf("u%dd%dw%df%d", s.Unit, s.Window, s.Warmup, s.Warm)
	}
	return fmt.Sprintf("u%dd%dw%d", s.Unit, s.Window, s.Warmup)
}

// SampledResult is the outcome of a sampled detailed run. The embedded
// Result reports the estimate: IPC per core is the inverse of the mean
// per-window CPI — every window measures the same µop count, so the
// mean CPI is exactly total measured cycles over total measured µops,
// the unbiased ratio estimate (averaging per-window IPCs directly
// would be Jensen-biased upward). Instructions is the µops measured in
// detail per thread (windows × window length), Cycles the per-core
// detailed cycles spent measuring them.
type SampledResult struct {
	Result
	// Spec is the sampling configuration that produced the estimate.
	Spec SamplingSpec
	// Windows is the number of measured windows per thread.
	Windows int
	// CIHalf is the per-core half-width of the SampledConfidence
	// interval around IPC: the Student-t interval on the mean window
	// CPI, mapped to the IPC scale by the delta method. Zero when only
	// one window was measured.
	CIHalf []float64
	// CV is the per-core coefficient of variation of the per-window
	// CPIs (the cv SMARTS-style sampling reports).
	CV []float64
	// Samples holds the raw per-window IPCs, indexed [core][window].
	Samples [][]float64
}

// DetailedSampled runs the workload under systematic sampling: per
// sampling unit of spec.Unit µops, fast-forward the gap functionally,
// warm spec.Warmup µops and measure spec.Window µops in full detail.
// A zero quota defaults to the first trace's length; quota/spec.Unit
// full units are sampled (a partial tail unit is not simulated at
// all — that is where the speedup comes from). The estimate and its
// confidence interval are over the per-window IPCs.
func DetailedSampled(ctx context.Context, w Workload, traces TraceSource, policy cache.PolicyName, spec SamplingSpec, quota uint64) (SampledResult, error) {
	if !spec.Enabled() {
		return SampledResult{}, fmt.Errorf("multicore: sampling spec disabled (use Detailed for exact runs)")
	}
	if err := spec.Validate(); err != nil {
		return SampledResult{}, err
	}
	_, cores, quota, err := buildDetailed(ctx, w, traces, policy, quota)
	if err != nil {
		return SampledResult{}, err
	}
	windows := quota / spec.Unit
	if windows == 0 {
		return SampledResult{}, fmt.Errorf("multicore: sampling unit %d exceeds quota %d", spec.Unit, quota)
	}
	steppers := asSteppers(cores)
	n := len(cores)
	gap := spec.Unit - spec.Warmup - spec.Window

	samples := make([][]float64, n)
	for i := range samples {
		samples[i] = make([]float64, 0, windows)
	}
	totalCycles := make([]uint64, n)
	clocks := make([]uint64, n)   // reused per-window clock baseline
	cross := make([]uint64, n)    // per-window boundary-crossing clocks
	weights := make([]float64, n) // recent per-core speed, drives ffInterleaved

	// Calibration prologue: one window-equivalent of detailed execution
	// at the trace start, before the first fast-forward. The functional
	// path replays the detailed path's observed prefetch-drop rate, and
	// that rate only exists once some detailed execution has run — an
	// uncalibrated first gap would issue every trained proposal and
	// over-warm the shared cache in a way later windows never recover
	// from (the LLC is far too large for a warmup stretch to
	// renormalize). The prologue's per-core wall-cycles also seed the
	// speed weights for the first fast-forward's interleaving.
	sp := telemetry.FromContext(ctx)
	if prologue := min(spec.Warmup+spec.Window, gap); prologue > 0 {
		stop := sp.Time(phaseWarmup)
		err := runToBoundary(ctx, steppers, prologue)
		stop()
		if err != nil {
			return SampledResult{}, err
		}
		for i, c := range steppers {
			if now := c.Now(); now > 0 {
				weights[i] = float64(prologue) / float64(now)
			}
		}
	}

	// The warmup phase drives the cores to an exact committed-count
	// boundary with the halt-at-boundary discipline (runToBoundary); the
	// measure phase uses the overshoot discipline of the exact run
	// (runWindowOvershoot): a core that crosses the unit boundary keeps
	// running — timed, into its own next gap — so the stragglers' window
	// tails see the same shared-hierarchy contention a full detailed run
	// would produce, halting before the next warmup region so the window
	// layout stays aligned. Overshot µops are simply skipped by the next
	// fast-forward.
	for k := uint64(0); k < windows; k++ {
		if err := ctx.Err(); err != nil {
			return SampledResult{}, err
		}
		base := k * spec.Unit
		stopFF := sp.Time(phaseFastForward)
		// A bounded warming stretch skips the gap's prefix outright (no
		// state updates, O(1)) and warms only the last spec.Warm µops.
		if spec.Warm > 0 && spec.Warm < gap {
			skipTo := base + gap - spec.Warm
			for _, c := range cores {
				if cm := c.Committed(); cm < skipTo {
					c.Skip(skipTo - cm)
				}
			}
		}
		// Fast-forward the rest of the gap (functional warming, clocks
		// frozen), interleaved in speed-proportional chunks: the shared
		// cache has no notion of time on this path, so insertion *order*
		// is the only lever for approximating the per-cycle mixing of a
		// timed execution — sequential whole-gap runs would weight a slow
		// core's pollution as heavily as a fast core's.
		ffInterleaved(cores, weights, base+gap)
		// Resynchronize the local clocks before timing resumes: the shared
		// uncore books bus/DRAM slots in absolute time, so a core whose
		// clock fell behind would otherwise pay the skew as fake queueing
		// behind the other cores' bookings.
		syncClocks(cores, steppers)
		stopFF()
		// Detailed warmup to the window start.
		if spec.Warmup > 0 {
			stopW := sp.Time(phaseWarmup)
			err := runToBoundary(ctx, steppers, base+gap+spec.Warmup)
			stopW()
			if err != nil {
				return SampledResult{}, err
			}
			// Warmups cost different wall-cycles per core (a slow core's
			// warmup runs long after the fast ones halted), so the clocks
			// have drifted apart again; re-sync so every core measures from
			// a common time origin.
			syncClocks(cores, steppers)
		}
		// Measure the window: per-core cycles from its own clock at the
		// window start to its crossing of the unit boundary.
		for i, c := range steppers {
			clocks[i] = c.Now()
		}
		stopM := sp.Time(phaseMeasure)
		err := runWindowOvershoot(ctx, steppers, base+spec.Unit, base+spec.Unit+gap, cross)
		stopM()
		if err != nil {
			return SampledResult{}, err
		}
		for i := range steppers {
			cyc := cross[i] - clocks[i]
			totalCycles[i] += cyc
			ipc := 0.0
			if cyc > 0 {
				ipc = float64(spec.Window) / float64(cyc)
				weights[i] = ipc
			}
			samples[i] = append(samples[i], ipc)
		}
	}

	res := SampledResult{
		Result: Result{
			Workload:     append(Workload(nil), w...),
			Policy:       policy,
			IPC:          make([]float64, n),
			Cycles:       totalCycles,
			Instructions: windows * spec.Window,
		},
		Spec:    spec,
		Windows: int(windows),
		CIHalf:  make([]float64, n),
		CV:      make([]float64, n),
		Samples: samples,
	}
	cpis := make([]float64, windows)
	for i := range samples {
		for k, ipc := range samples[i] {
			cpi := 0.0
			if ipc > 0 {
				cpi = 1 / ipc
			}
			cpis[k] = cpi
		}
		meanCPI, halfCPI := stats.MeanCI(cpis, SampledConfidence)
		res.IPC[i] = 1 / meanCPI
		res.CIHalf[i] = halfCPI / (meanCPI * meanCPI)
		res.CV[i] = stats.CoefVar(cpis)
	}
	return res, nil
}

// syncClocks advances every core's local clock to the fleet maximum.
func syncClocks(cores []*cpu.Core, steppers []stepper) {
	var sync uint64
	for _, c := range steppers {
		if now := c.Now(); now > sync {
			sync = now
		}
	}
	for _, c := range cores {
		c.SyncClock(sync)
	}
}

// ffChunk is the fast-forward batch size of the fastest core in a
// speed-weighted interleaving round; slower cores advance in
// proportionally smaller batches (at least one µop, so every core makes
// progress each round).
const ffChunk = 256

// ffInterleaved advances every core to tgt committed µops under
// functional warming, round-robin in chunks proportional to each core's
// recent timed speed. The functional path is clockless, so the order of
// shared-cache insertions is the only fidelity lever: per-µop
// alternation would weight every core equally, but a timed execution
// interleaves per-*cycle* — a core running 8× slower contributes 8×
// fewer insertions per unit time. Chunking by speed reproduces that
// mixture. Cores with no speed estimate (a zero weight) advance at the
// fastest core's pace.
func ffInterleaved(cores []*cpu.Core, weights []float64, tgt uint64) {
	wmax := 0.0
	for _, w := range weights {
		if w > wmax {
			wmax = w
		}
	}
	for {
		active := false
		for i, c := range cores {
			cm := c.Committed()
			if cm >= tgt {
				continue
			}
			n := uint64(ffChunk)
			if w := weights[i]; w > 0 && wmax > 0 {
				n = uint64(ffChunk*w/wmax + 0.5)
				if n == 0 {
					n = 1
				}
			}
			if n > tgt-cm {
				n = tgt - cm
			}
			c.FastForward(n)
			if c.Committed() < tgt {
				active = true
			}
		}
		if !active {
			return
		}
	}
}

// runWindowOvershoot advances the cores on the smallest-local-clock-first
// discipline until each has committed at least target µops, recording
// each core's local clock at its crossing in cross. Unlike runToBoundary,
// a core that crosses does not halt: it keeps running — timed — so the
// stragglers' window tails see the same shared-hierarchy contention the
// measured full run produces (whose cores overshoot their quota for
// exactly this reason). Overshooters consume their own next inter-sample
// gap, so they are capped at cap (the next warmup region's start) and
// the following fast-forward skips whatever they already executed.
func runWindowOvershoot(ctx context.Context, cores []stepper, target, cap uint64, cross []uint64) error {
	n := len(cores)
	done := ctx.Done()
	halted := make([]bool, n)
	reached := make([]bool, n)
	clocks := make([]uint64, n)
	remaining := 0
	for i, c := range cores {
		clocks[i] = c.Now()
		cross[i] = clocks[i]
		if c.Committed() >= target {
			reached[i] = true
		} else {
			remaining++
		}
		halted[i] = c.Committed() >= cap
	}
	for batch := 0; remaining > 0; batch++ {
		if done != nil && batch&cancelCheckMask == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		// Lowest-index minimum over the active cores; o is the runner-up.
		m, o := -1, -1
		for i := 0; i < n; i++ {
			if halted[i] {
				continue
			}
			switch {
			case m < 0 || clocks[i] < clocks[m]:
				m, o = i, m
			case o < 0 || clocks[i] < clocks[o]:
				o = i
			}
		}
		if m < 0 {
			break
		}
		limit := clocks[m] + soloChunkCycles
		if o >= 0 {
			limit = clocks[o]
			if m < o {
				limit++
			}
		}
		c := cores[m]
		quota := target
		if reached[m] {
			quota = cap
		}
		c.StepUntil(limit, quota)
		clocks[m] = c.Now()
		if !reached[m] && c.Committed() >= target {
			reached[m] = true
			cross[m] = clocks[m]
			remaining--
		}
		if reached[m] && c.Committed() >= cap {
			halted[m] = true
		}
	}
	return nil
}

// SweepDetailedSampled runs DetailedSampled over many workloads in
// parallel (see SweepDetailed for the residency contract).
func SweepDetailedSampled(ctx context.Context, workloads []Workload, traces TraceSource, policy cache.PolicyName, spec SamplingSpec, quota uint64) ([]SampledResult, error) {
	results := make([]SampledResult, len(workloads))
	errs := make([]error, len(workloads))
	if err := RunBounded(ctx, len(workloads), func(i int) {
		results[i], errs[i] = DetailedSampled(ctx, workloads[i], traces, policy, spec, quota)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
