package multicore

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mcbench/internal/cache"
)

// TestDetailedCancelMidRun proves a single long simulation — both the
// chunked single-core path and the batched multi-core path — aborts
// promptly on cancellation instead of running to its quota.
func TestDetailedCancelMidRun(t *testing.T) {
	trs := traces(t)
	for _, w := range []Workload{{"mcf"}, {"mcf", "soplex"}} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		// A quota far beyond the trace length: uncancelled this would
		// re-run the trace thousands of times.
		_, err := Detailed(ctx, w, trs, cache.LRU, uint64(testLen)*5000)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: error = %v, want context.Canceled", w, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("%v: cancellation took %v", w, elapsed)
		}
	}
}

// TestSweepDetailedCancel: cancelling mid-sweep returns promptly, stops
// dispatching, and leaks no goroutines.
func TestSweepDetailedCancel(t *testing.T) {
	trs := traces(t)
	var ws []Workload
	for i := 0; i < 64; i++ {
		ws = append(ws, Workload{"mcf", "soplex"})
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := SweepDetailed(ctx, ws, trs, cache.LRU, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		t.Errorf("goroutines did not drain: %d, baseline %d", g, baseline)
	}
}

// TestRunBoundedPreCancelled: a dead context dispatches nothing.
func TestRunBoundedPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := RunBounded(ctx, 8, func(int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v", err)
	}
	if ran {
		t.Error("fn ran under a pre-cancelled context")
	}
}
