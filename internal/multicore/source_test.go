package multicore

import (
	"context"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"mcbench/internal/badco"
	"mcbench/internal/bench"
	"mcbench/internal/cache"
	"mcbench/internal/trace"
)

// equivWorkloads is a small mixed-intensity workload set exercising 1-,
// 2- and 4-core construction paths.
func equivWorkloads() []Workload {
	return []Workload{
		{"mcf"},
		{"mcf", "povray"},
		{"gcc", "libquantum"},
		{"mcf", "gcc", "povray", "soplex"},
	}
}

// TestSuiteSourceBitIdenticalToLegacySuite pins the tentpole refactor's
// zero-drift guarantee: resolving traces through a SuiteSource produces
// byte-identical sweep Results — detailed and BADCO alike — to the
// legacy eagerly-built trace.NewSuite map.
func TestSuiteSourceBitIdenticalToLegacySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	const n = 8000
	ctx := context.Background()
	legacy, err := trace.NewSuite(n)
	if err != nil {
		t.Fatal(err)
	}
	legacySrc := TraceMap(legacy)
	prov := bench.At(bench.NewSuite(), n)
	ws := equivWorkloads()

	for _, pol := range []cache.PolicyName{cache.LRU, cache.DRRIP} {
		want, err := SweepDetailed(ctx, ws, legacySrc, pol, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SweepDetailed(ctx, ws, prov, pol, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("detailed sweep under %s diverges between SuiteSource and trace.NewSuite", pol)
		}
	}

	names := []string{"mcf", "povray", "gcc", "libquantum", "soplex"}
	wantModels, err := BuildModels(ctx, legacySrc, names, badco.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	gotModels, err := BuildModels(ctx, prov, names, badco.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotModels, wantModels) {
		t.Fatal("BADCO models diverge between SuiteSource and trace.NewSuite")
	}
	for _, pol := range []cache.PolicyName{cache.LRU, cache.DRRIP} {
		want, err := SweepApproximate(ctx, ws, wantModels, pol, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SweepApproximate(ctx, ws, gotModels, pol, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("BADCO sweep under %s diverges between SuiteSource and trace.NewSuite", pol)
		}
	}
}

// TestDirSourceIdenticalResults closes the round trip: write the suite
// traces to disk through the trace/io codec, load them back through a
// DirSource, and check the sweep Results are identical to the in-memory
// suite's.
func TestDirSourceIdenticalResults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	const n = 8000
	ctx := context.Background()
	dir := t.TempDir()
	names := []string{"mcf", "povray", "gcc", "soplex"}
	mem := TraceMap{}
	for _, name := range names {
		p, _ := trace.ByName(name)
		tr, err := trace.Generate(p, n)
		if err != nil {
			t.Fatal(err)
		}
		mem[name] = tr
		if err := tr.SaveFile(filepath.Join(dir, name+bench.TraceExt)); err != nil {
			t.Fatal(err)
		}
	}
	src, err := bench.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	prov := bench.At(src, n)
	ws := []Workload{{"mcf", "povray"}, {"gcc", "soplex"}, {"mcf", "gcc", "povray", "soplex"}}
	want, err := SweepDetailed(ctx, ws, mem, cache.LRU, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepDetailed(ctx, ws, prov, cache.LRU, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("DirSource sweep diverges from in-memory traces")
	}
}

// countingSource wraps a bench source and tracks the high-water mark of
// outstanding (acquired but unreleased) traces.
type countingSource struct {
	bench.Provider
	mu       sync.Mutex
	live     map[string]bool
	maxLive  int
	maxResid int
}

func newCountingSource(p bench.Provider) *countingSource {
	return &countingSource{Provider: p, live: map[string]bool{}}
}

func (c *countingSource) Trace(ctx context.Context, name string) (*trace.Trace, error) {
	tr, err := c.Provider.Trace(ctx, name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.live[name] = true
	if len(c.live) > c.maxLive {
		c.maxLive = len(c.live)
	}
	if r := bench.Resident(c.Provider.Source()); r > c.maxResid {
		c.maxResid = r
	}
	c.mu.Unlock()
	return tr, nil
}

func (c *countingSource) Release(name string) {
	c.mu.Lock()
	delete(c.live, name)
	c.mu.Unlock()
	c.Provider.Release(name)
}

// TestBuildModelsWorkingSet pins the memory contract of the lazy source
// layer: building BADCO models for a large scaled population keeps no
// more traces resident than the in-flight working set (the bounded build
// parallelism), never the whole population.
func TestBuildModelsWorkingSet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	src, err := bench.NewScaled(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	cs := newCountingSource(bench.At(src, 2000))
	models, err := BuildModels(context.Background(), cs, src.Names(), badco.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 16 {
		t.Fatalf("%d models, want 16", len(models))
	}
	bound := runtime.GOMAXPROCS(0)
	if cs.maxLive > bound {
		t.Errorf("outstanding traces peaked at %d, above the parallelism bound %d", cs.maxLive, bound)
	}
	if cs.maxResid > bound {
		t.Errorf("source residency peaked at %d, above the parallelism bound %d", cs.maxResid, bound)
	}
	if got := bench.Resident(src); got != 0 {
		t.Errorf("%d traces still resident after BuildModels", got)
	}
}
