package multicore

import (
	"context"
	"math"
	"testing"

	"mcbench/internal/cache"
)

// The golden determinism tests prove the batched driver's central claim:
// dispatching the minimum-clock core in batches (StepUntil up to the
// runner-up's clock) produces the exact schedule of the per-step
// reference driver, so every simulation result is bit-identical.

// assertBitIdentical fails unless the two results match bit for bit.
func assertBitIdentical(t *testing.T, name string, batched, reference Result) {
	t.Helper()
	if len(batched.IPC) != len(reference.IPC) || len(batched.Cycles) != len(reference.Cycles) {
		t.Fatalf("%s: shape mismatch: %d/%d IPCs, %d/%d cycles", name,
			len(batched.IPC), len(reference.IPC), len(batched.Cycles), len(reference.Cycles))
	}
	if batched.Instructions != reference.Instructions {
		t.Errorf("%s: quota %d, reference %d", name, batched.Instructions, reference.Instructions)
	}
	for i := range batched.IPC {
		if batched.Cycles[i] != reference.Cycles[i] {
			t.Errorf("%s: core %d quota cycle %d, reference %d", name, i, batched.Cycles[i], reference.Cycles[i])
		}
		if math.Float64bits(batched.IPC[i]) != math.Float64bits(reference.IPC[i]) {
			t.Errorf("%s: core %d IPC %v (bits %x), reference %v (bits %x)", name, i,
				batched.IPC[i], math.Float64bits(batched.IPC[i]),
				reference.IPC[i], math.Float64bits(reference.IPC[i]))
		}
	}
}

func TestGoldenDetailedMatchesReference(t *testing.T) {
	trs := traces(t)
	for _, w := range []Workload{
		{"mcf", "povray"},
		{"mcf", "soplex", "gcc", "libquantum"},
	} {
		batched, err := Detailed(context.Background(), w, trs, cache.LRU, 0)
		if err != nil {
			t.Fatal(err)
		}
		reference, err := detailedWith(context.Background(), w, trs, cache.LRU, 0, runInterleavedReference)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "detailed "+w.String(), batched, reference)
	}
}

func TestGoldenApproximateMatchesReference(t *testing.T) {
	mods := models(t)
	for _, w := range []Workload{
		{"mcf", "povray"},
		{"mcf", "soplex", "gcc", "libquantum"},
	} {
		batched, err := Approximate(context.Background(), w, mods, cache.LRU, 0)
		if err != nil {
			t.Fatal(err)
		}
		reference, err := approximateWith(context.Background(), w, mods, cache.LRU, 0, runInterleavedReference)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "approximate "+w.String(), batched, reference)
	}
}

// TestGoldenAcrossPolicies widens the equivalence check to a policy with
// random replacement (seeded) and a non-trivial quota, exercising the
// quota-capped batch path.
func TestGoldenAcrossPolicies(t *testing.T) {
	trs := traces(t)
	for _, pol := range []cache.PolicyName{cache.DRRIP, cache.Random} {
		w := Workload{"soplex", "hmmer"}
		batched, err := Detailed(context.Background(), w, trs, pol, 7500)
		if err != nil {
			t.Fatal(err)
		}
		reference, err := detailedWith(context.Background(), w, trs, pol, 7500, runInterleavedReference)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, "detailed "+string(pol), batched, reference)
	}
}

// TestGoldenSingleCore pins the n==1 fast path of the batched driver to
// the reference schedule.
func TestGoldenSingleCore(t *testing.T) {
	trs := traces(t)
	batched, err := Detailed(context.Background(), Workload{"hmmer"}, trs, cache.LRU, 5000)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := detailedWith(context.Background(), Workload{"hmmer"}, trs, cache.LRU, 5000, runInterleavedReference)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "detailed single-core", batched, reference)
}
