package mem

// Checkpoint support: the bus's path-booking cursors and both devices'
// statistics are the only mutable state; the cycle costs are derived from
// the config at construction and stay identity. Fields are exported so
// snapshots survive encoding/gob persistence.

// BusState is a reusable snapshot of a Bus.
type BusState struct {
	CmdFreeAt  uint64
	DataFreeAt uint64
	Busy       uint64
	Transfers  uint64
}

// Snapshot copies the bus's mutable state into the buffer.
func (b *Bus) Snapshot(into *BusState) {
	into.CmdFreeAt = b.cmdFreeAt
	into.DataFreeAt = b.dataFreeAt
	into.Busy = b.busy
	into.Transfers = b.transfers
}

// Restore overwrites the bus's mutable state from the buffer.
func (b *Bus) Restore(from *BusState) {
	b.cmdFreeAt = from.CmdFreeAt
	b.dataFreeAt = from.DataFreeAt
	b.busy = from.Busy
	b.transfers = from.Transfers
}

// DRAMState is a reusable snapshot of a DRAM.
type DRAMState struct {
	Requests uint64
}

// Snapshot copies the DRAM's mutable state into the buffer.
func (d *DRAM) Snapshot(into *DRAMState) { into.Requests = d.requests }

// Restore overwrites the DRAM's mutable state from the buffer.
func (d *DRAM) Restore(from *DRAMState) { d.requests = from.Requests }
