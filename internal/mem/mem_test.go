package mem

import "testing"

func TestNewBusRejectsBadConfig(t *testing.T) {
	bad := DefaultBusConfig()
	bad.BusClockMHz = 0
	if _, err := NewBus(bad); err == nil {
		t.Error("NewBus accepted zero bus clock")
	}
	bad = DefaultBusConfig()
	bad.WidthBytes = -1
	if _, err := NewBus(bad); err == nil {
		t.Error("NewBus accepted negative width")
	}
}

func TestBusLineCyclesMatchesPaperConfig(t *testing.T) {
	b := MustNewBus(DefaultBusConfig())
	// 64B line / 8B width = 8 bus cycles; 3000/800 = 3.75 core cycles per
	// bus cycle -> 30 core cycles per line.
	if got := b.LineCycles(); got != 30 {
		t.Errorf("line transfer %d core cycles, want 30", got)
	}
}

func TestBusSerialisesTransfers(t *testing.T) {
	b := MustNewBus(DefaultBusConfig())
	s1, d1 := b.TransferLine(100)
	if s1 != 100 || d1 != 130 {
		t.Fatalf("first transfer [%d,%d], want [100,130]", s1, d1)
	}
	// Second request arriving during the first must queue.
	s2, d2 := b.TransferLine(110)
	if s2 != 130 || d2 != 160 {
		t.Fatalf("second transfer [%d,%d], want [130,160]", s2, d2)
	}
	// A request arriving after the bus is idle starts immediately.
	s3, _ := b.TransferLine(1000)
	if s3 != 1000 {
		t.Fatalf("idle-bus transfer started at %d, want 1000", s3)
	}
	if b.Transfers() != 3 {
		t.Errorf("transfers %d", b.Transfers())
	}
	if b.BusyCycles() != 90 {
		t.Errorf("busy cycles %d, want 90", b.BusyCycles())
	}
}

func TestBusCommandShorterThanLine(t *testing.T) {
	b := MustNewBus(DefaultBusConfig())
	_, dCmd := b.TransferCommand(0)
	b2 := MustNewBus(DefaultBusConfig())
	_, dLine := b2.TransferLine(0)
	if dCmd >= dLine {
		t.Errorf("command transfer (%d) not shorter than line transfer (%d)", dCmd, dLine)
	}
}

func TestDRAMFixedLatency(t *testing.T) {
	d := NewDRAM(200)
	if got := d.Access(50); got != 250 {
		t.Errorf("Access(50) = %d, want 250", got)
	}
	// Fully pipelined: a burst of requests all take the same latency.
	if got := d.Access(51); got != 251 {
		t.Errorf("Access(51) = %d, want 251", got)
	}
	if d.Requests() != 2 {
		t.Errorf("requests %d", d.Requests())
	}
	if d.Latency() != 200 {
		t.Errorf("latency %d", d.Latency())
	}
}
