// Package mem models the off-chip memory path of the simulated CMP: the
// front-side bus (FSB) and a fixed-latency DRAM, per Table II of the paper
// (800 MHz FSB, 8 bytes wide, 200-cycle DRAM latency, 3 GHz cores).
//
// All times are in core cycles.
package mem

import "fmt"

// BusConfig describes the FSB.
type BusConfig struct {
	CoreClockMHz int // core frequency (3000 in the paper)
	BusClockMHz  int // FSB frequency (800 in the paper)
	WidthBytes   int // bytes transferred per bus cycle (8 in the paper)
	LineBytes    int // cache line size (64)
	CommandBytes int // request/command message size on the bus
}

// DefaultBusConfig returns the paper's FSB parameters.
func DefaultBusConfig() BusConfig {
	return BusConfig{
		CoreClockMHz: 3000,
		BusClockMHz:  800,
		WidthBytes:   8,
		LineBytes:    64,
		CommandBytes: 8,
	}
}

// Bus models a split-transaction FSB: the address/command path and the
// data path are booked independently, so a request waiting in DRAM does
// not block other transfers. Each path tracks the cycle at which it next
// becomes free; requests arriving earlier queue behind it.
type Bus struct {
	lineCycles    uint64 // core cycles to move one cache line
	commandCycles uint64 // core cycles to move one command
	cmdFreeAt     uint64
	dataFreeAt    uint64
	busy          uint64 // total busy core cycles (utilisation accounting)
	transfers     uint64
}

// NewBus builds a bus from cfg.
func NewBus(cfg BusConfig) (*Bus, error) {
	if cfg.CoreClockMHz <= 0 || cfg.BusClockMHz <= 0 || cfg.WidthBytes <= 0 ||
		cfg.LineBytes <= 0 || cfg.CommandBytes <= 0 {
		return nil, fmt.Errorf("mem: invalid bus config %+v", cfg)
	}
	ratio := float64(cfg.CoreClockMHz) / float64(cfg.BusClockMHz)
	lineBusCycles := (cfg.LineBytes + cfg.WidthBytes - 1) / cfg.WidthBytes
	cmdBusCycles := (cfg.CommandBytes + cfg.WidthBytes - 1) / cfg.WidthBytes
	return &Bus{
		lineCycles:    uint64(float64(lineBusCycles)*ratio + 0.5),
		commandCycles: uint64(float64(cmdBusCycles)*ratio + 0.5),
	}, nil
}

// MustNewBus is NewBus for static configurations.
func MustNewBus(cfg BusConfig) *Bus {
	b, err := NewBus(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// LineCycles returns the core cycles one line transfer occupies the bus.
func (b *Bus) LineCycles() uint64 { return b.lineCycles }

// reserve books one bus path for dur cycles starting no earlier than now.
func (b *Bus) reserve(freeAt *uint64, now, dur uint64) (start, done uint64) {
	start = now
	if *freeAt > start {
		start = *freeAt
	}
	done = start + dur
	*freeAt = done
	b.busy += dur
	b.transfers++
	return start, done
}

// TransferLine books a full cache-line transfer on the data path beginning
// at or after now and returns when it starts and completes.
func (b *Bus) TransferLine(now uint64) (start, done uint64) {
	return b.reserve(&b.dataFreeAt, now, b.lineCycles)
}

// TransferCommand books a miss request on the address/command path at or
// after now.
func (b *Bus) TransferCommand(now uint64) (start, done uint64) {
	return b.reserve(&b.cmdFreeAt, now, b.commandCycles)
}

// FreeAt reports when the data path next becomes idle.
func (b *Bus) FreeAt() uint64 { return b.dataFreeAt }

// BusyCycles reports cumulative busy time, for utilisation statistics.
func (b *Bus) BusyCycles() uint64 { return b.busy }

// Transfers reports the number of bookings.
func (b *Bus) Transfers() uint64 { return b.transfers }

// DRAM is a fixed-latency, fully pipelined memory: a request arriving at
// cycle t is served at t + Latency. Bank conflicts are not modelled,
// matching the paper's flat "DRAM latency: 200 cycles" parameter.
type DRAM struct {
	latency  uint64
	requests uint64
}

// NewDRAM builds a DRAM with the given access latency in core cycles.
func NewDRAM(latencyCycles uint64) *DRAM { return &DRAM{latency: latencyCycles} }

// Latency returns the configured access latency.
func (d *DRAM) Latency() uint64 { return d.latency }

// Access returns the completion time of a request arriving at now.
func (d *DRAM) Access(now uint64) uint64 {
	d.requests++
	return now + d.latency
}

// Requests reports the number of accesses served.
func (d *DRAM) Requests() uint64 { return d.requests }
