package cophase

import (
	"context"
	"testing"

	"mcbench/internal/cache"
	"mcbench/internal/multicore"
	"mcbench/internal/trace"
)

// tinySuite builds two small but behaviourally distinct benchmarks.
func tinySuite(n int) map[string]*trace.Trace {
	mk := func(name string, seed int64, patterns []trace.PatternSpec) *trace.Trace {
		return trace.MustGenerate(trace.Params{
			Name:        name,
			LoadFrac:    0.3,
			StoreFrac:   0.1,
			BranchFrac:  0.1,
			FPFrac:      0.05,
			DepMean:     8,
			LoadDepFrac: 0.4,
			BranchBias:  0.92,
			CodeBytes:   8 << 10,
			Patterns:    patterns,
			Seed:        seed,
		}, n)
	}
	return map[string]*trace.Trace{
		"cachey": mk("cachey", 11, []trace.PatternSpec{
			{Kind: trace.HotSet, Bytes: 24 << 10, Weight: 1},
		}),
		"streamy": mk("streamy", 12, []trace.PatternSpec{
			{Kind: trace.Stream, Weight: 1},
			{Kind: trace.HotSet, Bytes: 8 << 10, Weight: 0.3},
		}),
	}
}

func TestNewValidation(t *testing.T) {
	traces := tinySuite(4000)
	if _, err := New(nil, traces, DefaultConfig(cache.LRU)); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := New([]string{"missing"}, traces, DefaultConfig(cache.LRU)); err == nil {
		t.Error("unknown benchmark accepted")
	}
	cfg := DefaultConfig(cache.LRU)
	cfg.Phases = 0
	if _, err := New([]string{"cachey"}, traces, cfg); err == nil {
		t.Error("zero phases accepted")
	}
	cfg = DefaultConfig(cache.LRU)
	cfg.SampleOps = 0
	if _, err := New([]string{"cachey"}, traces, cfg); err == nil {
		t.Error("zero sample budget accepted")
	}
}

func TestRunCompletesAndReusesMatrix(t *testing.T) {
	traces := tinySuite(8000)
	cfg := Config{Phases: 8, SampleOps: 250, Policy: cache.LRU}
	s, err := New([]string{"cachey", "streamy"}, traces, cfg)
	if err != nil {
		t.Fatal(err)
	}
	quota := uint64(traces["cachey"].Len())
	res, err := s.Run(quota)
	if err != nil {
		t.Fatal(err)
	}
	for k, ipc := range res.IPC {
		if ipc <= 0 || ipc > 4 {
			t.Fatalf("core %d IPC %.3f out of range", k, ipc)
		}
		if res.Cycles[k] == 0 {
			t.Fatalf("core %d quota cycle zero", k)
		}
	}
	// The matrix must stay within the phase-combination space.
	if res.MatrixEntries == 0 {
		t.Fatal("no matrix entries measured")
	}
	if res.MatrixEntries > cfg.Phases*cfg.Phases {
		t.Fatalf("matrix has %d entries, more than the %d-entry space", res.MatrixEntries, cfg.Phases*cfg.Phases)
	}

	// A longer run revisits co-phases: entries must be reused (the count
	// stays within the space) and the amortised detailed-simulation cost
	// must fall well below simulating everything outright.
	res2, err := s.Run(quota * 4)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MatrixEntries > cfg.Phases*cfg.Phases {
		t.Fatalf("matrix did not bound: %d entries", res2.MatrixEntries)
	}
	direct := (quota + quota*4) * 2 // both runs, both threads
	if res2.SimulatedOps >= direct/2 {
		t.Fatalf("co-phase cost %d ops not clearly below direct cost %d", res2.SimulatedOps, direct)
	}
}

// The co-phase prediction must agree qualitatively with a direct detailed
// simulation: per-thread IPCs within a modest relative error.
func TestCophaseTracksDetailedSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed reference simulation")
	}
	traces := tinySuite(12000)
	w := multicore.Workload{"cachey", "streamy"}
	quota := uint64(12000)

	ref, err := multicore.Detailed(context.Background(), w, multicore.TraceMap(traces), cache.LRU, quota)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New([]string(w), traces, Config{Phases: 10, SampleOps: 600, WarmOps: 2400, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := s.Run(quota)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ref.IPC {
		relErr := (pred.IPC[k] - ref.IPC[k]) / ref.IPC[k]
		if relErr < 0 {
			relErr = -relErr
		}
		// Two opposing biases bound the band: the matrix entries are
		// measured warm (estimating steady state) while the one-pass
		// detailed reference pays its cold start across the whole quota.
		if relErr > 0.30 {
			t.Errorf("core %d: co-phase IPC %.3f vs detailed %.3f (err %.1f%%)",
				k, pred.IPC[k], ref.IPC[k], relErr*100)
		}
	}
	// And the ranking of the two threads must match.
	if (pred.IPC[0] > pred.IPC[1]) != (ref.IPC[0] > ref.IPC[1]) {
		t.Errorf("co-phase inverted the thread ranking: pred %v vs ref %v", pred.IPC, ref.IPC)
	}
}

func TestRunZeroQuota(t *testing.T) {
	traces := tinySuite(4000)
	s, err := New([]string{"cachey"}, traces, Config{Phases: 4, SampleOps: 200, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err == nil {
		t.Error("zero quota accepted")
	}
}

func TestSingleThreadDegenerate(t *testing.T) {
	traces := tinySuite(6000)
	s, err := New([]string{"cachey"}, traces, Config{Phases: 6, SampleOps: 400, Policy: cache.DRRIP})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 1 || res.IPC[0] <= 0 {
		t.Fatalf("bad single-thread result: %+v", res)
	}
	// Single thread: at most Phases distinct co-phases exist.
	if res.MatrixEntries > 6 {
		t.Errorf("matrix %d entries for 6 phases", res.MatrixEntries)
	}
}
