// Package cophase implements the co-phase matrix method of Van
// Biesbrouck, Eeckhout and Calder ("Considering all starting points for
// simultaneous multithreading simulation", ISPASS 2006 — cited as [19] by
// the paper). Footnote 4 of the paper notes that its workload-selection
// problem is orthogonal to, and also concerns, this more rigorous
// multiprogram simulation method; this package makes that concrete.
//
// Each benchmark trace is divided into fixed-length phases. The co-phase
// matrix maps a tuple of per-thread phase ids to the per-thread IPCs
// measured by a short detailed simulation of those phase slices running
// together. A whole multiprogram execution is then replayed analytically:
// threads advance at their matrix-entry IPC until the next phase
// boundary, and matrix entries are filled lazily (and reused) as new
// phase combinations arise. The speed win is the reuse: long executions
// revisit few distinct co-phases.
package cophase

import (
	"fmt"
	"strconv"
	"strings"

	"mcbench/internal/cache"
	"mcbench/internal/cpu"
	"mcbench/internal/trace"
	"mcbench/internal/uncore"
)

// Config parameterises the method.
type Config struct {
	// Phases is the number of equal-length phases each benchmark is
	// divided into.
	Phases int
	// SampleOps is the per-thread µop budget of one matrix-entry
	// measurement (a short detailed simulation). It should be well below
	// the phase length for the method to pay off.
	SampleOps int
	// WarmOps is the per-thread warm-up budget run before measuring each
	// entry (stands in for the checkpointed architectural state the
	// original method restores). Zero defaults to SampleOps; cache-heavy
	// benchmarks need warm-up of the order of their working set.
	WarmOps int
	// Policy is the shared-LLC replacement policy of the simulated CMP.
	Policy cache.PolicyName
	// Core optionally overrides the detailed core configuration.
	Core *cpu.Config
}

// DefaultConfig returns a setup that works well for the 100 k-µop traces
// of this repository: 10 phases, 2 k-µop samples.
func DefaultConfig(policy cache.PolicyName) Config {
	return Config{Phases: 10, SampleOps: 2000, Policy: policy}
}

// Result is the outcome of one co-phase-predicted execution.
type Result struct {
	// IPC per core over the first quota instructions of each thread.
	IPC []float64
	// Cycles per core at which the quota was reached.
	Cycles []uint64
	// MatrixEntries is the number of distinct co-phases measured.
	MatrixEntries int
	// SimulatedOps counts the µops actually run through the detailed
	// simulator (the method's cost); compare with quota × cores.
	SimulatedOps uint64
}

// entry is one co-phase matrix row: per-thread IPCs for a phase tuple.
type entry struct {
	ipc []float64
}

// Simulator predicts multiprogram executions of one fixed workload.
type Simulator struct {
	cfg      Config
	names    []string
	traces   []*trace.Trace
	phaseLen []int
	matrix   map[string]entry
	rotCache map[[2]int]*trace.Trace
	simOps   uint64
}

// New builds a co-phase simulator for the workload given by names (one
// benchmark per core; duplicates allowed).
func New(names []string, traces map[string]*trace.Trace, cfg Config) (*Simulator, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cophase: empty workload")
	}
	if cfg.Phases < 1 {
		return nil, fmt.Errorf("cophase: %d phases", cfg.Phases)
	}
	if cfg.SampleOps < 1 {
		return nil, fmt.Errorf("cophase: sample budget %d", cfg.SampleOps)
	}
	s := &Simulator{cfg: cfg, names: names, matrix: map[string]entry{}}
	for _, n := range names {
		tr, ok := traces[n]
		if !ok {
			return nil, fmt.Errorf("cophase: no trace for %q", n)
		}
		if tr.Len() < cfg.Phases {
			return nil, fmt.Errorf("cophase: trace %q shorter than phase count", n)
		}
		s.traces = append(s.traces, tr)
		s.phaseLen = append(s.phaseLen, tr.Len()/cfg.Phases)
	}
	return s, nil
}

// phaseOf returns the phase id of absolute op position pos in thread k
// (positions wrap at the trace end: restart semantics).
func (s *Simulator) phaseOf(k int, pos float64) int {
	n := s.traces[k].Len()
	p := int(pos) % n / s.phaseLen[k]
	if p >= s.cfg.Phases {
		p = s.cfg.Phases - 1 // the last phase absorbs the remainder
	}
	return p
}

// phaseEnd returns the op offset (within one trace iteration) at which
// the given phase ends.
func (s *Simulator) phaseEnd(k, phase int) int {
	if phase >= s.cfg.Phases-1 {
		return s.traces[k].Len()
	}
	return (phase + 1) * s.phaseLen[k]
}

// rotated returns thread k's trace rotated to begin at the given phase's
// first op, caching the result (each phase start is needed whenever a new
// co-phase tuple contains it).
func (s *Simulator) rotated(k, phase int) *trace.Trace {
	if s.rotCache == nil {
		s.rotCache = map[[2]int]*trace.Trace{}
	}
	ck := [2]int{k, phase}
	if tr, ok := s.rotCache[ck]; ok {
		return tr
	}
	ops := s.traces[k].Ops
	start := phase * s.phaseLen[k]
	rot := make([]trace.Op, 0, len(ops))
	rot = append(rot, ops[start:]...)
	rot = append(rot, ops[:start]...)
	tr := &trace.Trace{Name: s.traces[k].Name, Ops: rot}
	s.rotCache[ck] = tr
	return tr
}

// key builds the matrix key for a tuple of phase ids.
func key(phases []int) string {
	parts := make([]string, len(phases))
	for i, p := range phases {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ",")
}

// measure fills one matrix entry: it runs the phase slices of all
// threads together on a fresh CMP for SampleOps µops per thread and
// records the per-thread IPCs.
func (s *Simulator) measure(phases []int) (entry, error) {
	unc, err := uncore.New(uncore.ConfigFor(len(s.names), s.cfg.Policy))
	if err != nil {
		return entry{}, err
	}
	coreCfg := cpu.DefaultConfig()
	if s.cfg.Core != nil {
		coreCfg = *s.cfg.Core
	}
	cores := make([]*cpu.Core, len(s.names))
	for k := range s.names {
		// Simulate from the phase's starting point onward (the original
		// method restores a checkpoint there). Rotating the trace keeps
		// position-dependent behaviour — a streaming phase must keep
		// streaming, not loop over its own slice.
		c, err := cpu.New(k, coreCfg, s.rotated(k, phases[k]), unc)
		if err != nil {
			return entry{}, err
		}
		cores[k] = c
	}
	// Smallest-local-clock-first interleaving, as in package multicore.
	// The warm-up µops heat caches and predictors; IPC is measured on the
	// following SampleOps.
	warm := uint64(s.cfg.WarmOps)
	if warm == 0 {
		warm = uint64(s.cfg.SampleOps)
	}
	quota := warm + uint64(s.cfg.SampleOps)
	done := 0
	warmCycle := make([]uint64, len(cores))
	warmed := make([]bool, len(cores))
	reached := make([]bool, len(cores))
	cycles := make([]uint64, len(cores))
	for done < len(cores) {
		min := 0
		for i := 1; i < len(cores); i++ {
			if cores[i].Now() < cores[min].Now() {
				min = i
			}
		}
		cores[min].Step()
		committed := cores[min].Committed()
		if !warmed[min] && committed >= warm {
			warmed[min] = true
			warmCycle[min] = cores[min].Now()
		}
		if !reached[min] && committed >= quota {
			reached[min] = true
			cycles[min] = cores[min].Now()
			done++
		}
	}
	e := entry{ipc: make([]float64, len(cores))}
	for k, cyc := range cycles {
		s.simOps += quota
		if cyc > warmCycle[k] {
			e.ipc[k] = float64(quota-warm) / float64(cyc-warmCycle[k])
		}
	}
	return e, nil
}

// lookup returns the matrix entry for the tuple, measuring it on first
// use.
func (s *Simulator) lookup(phases []int) (entry, error) {
	k := key(phases)
	if e, ok := s.matrix[k]; ok {
		return e, nil
	}
	e, err := s.measure(phases)
	if err != nil {
		return entry{}, err
	}
	s.matrix[k] = e
	return e, nil
}

// Run predicts the execution in which every thread executes quota µops
// (restarting at the trace end until all threads are done, as in the
// paper's methodology), using analytical fast-forwarding between phase
// boundaries.
func (s *Simulator) Run(quota uint64) (Result, error) {
	if quota == 0 {
		return Result{}, fmt.Errorf("cophase: zero quota")
	}
	k := len(s.names)
	pos := make([]float64, k)     // absolute op position per thread
	cyclesAt := make([]uint64, k) // commit cycle at quota
	reached := make([]bool, k)
	phases := make([]int, k)
	var now float64
	remaining := k

	for remaining > 0 {
		for t := 0; t < k; t++ {
			phases[t] = s.phaseOf(t, pos[t])
		}
		e, err := s.lookup(phases)
		if err != nil {
			return Result{}, err
		}
		// Advance to the earliest of: any thread's phase boundary, any
		// unfinished thread's quota crossing.
		delta := -1.0
		for t := 0; t < k; t++ {
			ipc := e.ipc[t]
			if ipc <= 0 {
				ipc = 1e-6 // degenerate entry: avoid stalling forever
			}
			iterPos := int(pos[t]) % s.traces[t].Len()
			boundary := float64(s.phaseEnd(t, phases[t]) - iterPos)
			d := boundary / ipc
			if !reached[t] {
				if togo := float64(quota) - pos[t]; togo > 0 {
					if dq := togo / ipc; dq < d {
						d = dq
					}
				}
			}
			if delta < 0 || d < delta {
				delta = d
			}
		}
		if delta <= 0 {
			delta = 1
		}
		now += delta
		for t := 0; t < k; t++ {
			ipc := e.ipc[t]
			if ipc <= 0 {
				ipc = 1e-6
			}
			pos[t] += ipc * delta
			if !reached[t] && pos[t] >= float64(quota)-1e-9 {
				reached[t] = true
				cyclesAt[t] = uint64(now)
				remaining--
			}
		}
	}

	res := Result{
		IPC:           make([]float64, k),
		Cycles:        cyclesAt,
		MatrixEntries: len(s.matrix),
		SimulatedOps:  s.simOps,
	}
	for t, cyc := range cyclesAt {
		if cyc > 0 {
			res.IPC[t] = float64(quota) / float64(cyc)
		}
	}
	return res, nil
}

// MatrixSize returns the number of co-phase entries measured so far.
func (s *Simulator) MatrixSize() int { return len(s.matrix) }

// SimulatedOps returns the detailed-simulation cost so far, in µops.
func (s *Simulator) SimulatedOps() uint64 { return s.simOps }
