// Package fleet coordinates a set of mcbench serve nodes into one
// distributed lab. A Coordinator tracks worker membership (heartbeat
// registration with lease-style liveness), partitions a campaign's
// shardable products across the live workers by rendezvous-hashing their
// content keys, dispatches the shards as warm jobs through injected
// peers, and re-issues the shards of dead or straggling workers to the
// remaining nodes (work-stealing). Results converge through the
// content-addressed result fabric: every node persists tables under
// identical keys, and any node reads any table via the /cache/{key}
// read-through, so the coordinator's local warm after a fleet dispatch
// is all cache hits in the happy path and plain local compute in every
// failure mode — the fleet is an optimisation, never a correctness
// dependency.
//
// The package speaks to peers through the Peer interface so it does not
// import the HTTP client (which lives in the public mcbench package, a
// downstream importer of this one); the root package injects a Dialer
// backed by mcbench.Client, inheriting its retries and backoff.
package fleet

import (
	"context"
	"errors"
	"time"

	"mcbench/internal/buildinfo"
	"mcbench/internal/experiments"
)

// Peer is the coordinator's view of one remote serve node, and the
// agent's view of its coordinator. Implementations wrap an HTTP client
// (mcbench.Client in production, a test double in tests).
type Peer interface {
	// Join registers with a coordinator and returns the granted member
	// identity and heartbeat interval. An incompatible build or lab
	// configuration fails with an error wrapping ErrIncompatible.
	Join(ctx context.Context, req JoinRequest) (*JoinResponse, error)
	// Heartbeat renews the member's liveness lease. An unknown member id
	// (coordinator restarted, or the member was reaped) is an error; the
	// agent re-joins.
	Heartbeat(ctx context.Context, id string) error
	// Leave deregisters the member (best-effort on shutdown).
	Leave(ctx context.Context, id string) error
	// SubmitWarm submits a warm job for the given products and returns
	// the job id (dedup on the remote coalesces identical shards).
	SubmitWarm(ctx context.Context, products []experiments.Request) (jobID string, err error)
	// WaitJob blocks until the job reaches a terminal state, failing if
	// that state is not done.
	WaitJob(ctx context.Context, jobID string) error
	// CancelJob requests cancellation of a job (best-effort, used when a
	// shard is stolen from a straggler).
	CancelJob(ctx context.Context, jobID string) error
	// FetchCache retrieves the raw stored bytes of a content key;
	// ok=false is a plain miss.
	FetchCache(ctx context.Context, key string) (data []byte, ok bool, err error)
}

// Dialer opens a Peer for a worker's advertised address. Injected by the
// root package (backed by mcbench.NewClient) to avoid an import cycle.
type Dialer func(addr string) (Peer, error)

// JoinRequest is a worker's registration handshake. Build carries the
// worker's `mcbench version` identity and the lab fields pin the
// experiment configuration; the coordinator rejects any mismatch with
// ErrIncompatible, because nodes with different builds or lab configs
// would compute different bytes for the same content key and poison the
// shared fabric.
type JoinRequest struct {
	// Addr is the worker's advertised listen address, reachable from the
	// coordinator.
	Addr  string         `json:"addr"`
	Build buildinfo.Info `json:"build"`
	// Lab identity: the benchmark source name, trace length, seed,
	// warmup and sampling spec (canonical string, "exact" when disabled)
	// the worker's lab is configured with.
	Source   string `json:"source"`
	TraceLen int    `json:"trace_len"`
	Seed     int64  `json:"seed"`
	Warmup   int    `json:"warmup"`
	Sampling string `json:"sampling,omitempty"`
}

// JoinResponse grants fleet membership.
type JoinResponse struct {
	// ID is the member identity to heartbeat under.
	ID string `json:"id"`
	// Heartbeat is the interval the worker must beat at; missing
	// missedBeats consecutive beats forfeits membership.
	Heartbeat time.Duration `json:"heartbeat"`
}

// ErrIncompatible reports a join rejected for a build or lab
// configuration mismatch. The serve layer maps it to HTTP 409 and the
// agent treats it as fatal (retrying cannot help).
var ErrIncompatible = errors.New("fleet: incompatible build or lab configuration")
