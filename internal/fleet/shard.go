package fleet

import (
	"context"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"mcbench/internal/experiments"
)

// maxDispatchRounds bounds the steal-and-redispatch loop: each round
// excludes at least one failed member, so the loop terminates on its own
// once the fleet is exhausted; the bound is a backstop against a
// pathological membership churning joins between rounds.
const maxDispatchRounds = 8

// weight is the rendezvous (highest-random-weight) score of a member for
// a key: fnv64a over key, a NUL separator, and the member id. Every node
// computes the same weights from the same membership, so shard ownership
// needs no coordination and reshards minimally when membership changes —
// only the keys whose top-ranked member vanished move.
func weight(key, memberID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(memberID))
	return h.Sum64()
}

// rankMembers orders members by descending rendezvous weight for key:
// index 0 is the owner, the rest are the fallback order Fetch probes.
func rankMembers(members []*member, key string) []*member {
	out := make([]*member, len(members))
	copy(out, members)
	sort.SliceStable(out, func(i, j int) bool {
		return weight(key, out[i].id) > weight(key, out[j].id)
	})
	return out
}

// ShardEvent reports the lifecycle of one dispatched shard for progress
// streaming: Type is "dispatch" (shard handed to Worker as JobID),
// "done" (its warm job succeeded), or "steal" (its worker died or
// straggled; the shard's products re-enter the pending set).
type ShardEvent struct {
	Type     string // "dispatch" | "done" | "steal"
	Worker   string // member id
	Addr     string // member address
	JobID    string
	Products int   // products in the shard
	Err      error // on "steal": why the shard was taken back
}

// Report summarises one WarmFleet dispatch.
type Report struct {
	// Members is how many live workers the first round partitioned over.
	Members int
	// Shards is the total number of shard jobs dispatched (including
	// re-dispatches after steals).
	Shards int
	// Products is the number of distinct products in the plan.
	Products int
	// Stolen is how many shards were re-issued after their worker died
	// or straggled.
	Stolen int
	// Unassigned is how many products no worker completed; the caller's
	// local warm computes them.
	Unassigned int
}

// WarmFleet partitions the keyed products across the live workers by
// rendezvous-hashing each content key, dispatches one warm job per
// worker, and re-issues the shards of failed or straggling workers to
// the remaining fleet until the plan is served or the fleet is
// exhausted. It never fails: products nobody completed are reported as
// Unassigned and fall to the caller's local warm, which reads everything
// the fleet did complete through the result fabric. emit, when non-nil,
// receives shard lifecycle events for progress streaming.
func (c *Coordinator) WarmFleet(ctx context.Context, products []experiments.KeyedRequest, emit func(ShardEvent)) Report {
	if emit == nil {
		emit = func(ShardEvent) {}
	}
	// Dedup by content key (a plan can name one product many times).
	byKey := make(map[string]experiments.KeyedRequest, len(products))
	for _, p := range products {
		byKey[p.Key] = p
	}
	pending := make([]experiments.KeyedRequest, 0, len(byKey))
	for _, p := range byKey {
		pending = append(pending, p)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Key < pending[j].Key })

	rep := Report{Products: len(pending)}
	// excluded accumulates members whose shard failed or straggled:
	// re-partitioning must never hand a stolen shard back to its original
	// owner, where the warm-key dedup would coalesce the re-issue onto
	// the very job being stolen from.
	excluded := make(map[string]bool)
	for round := 0; len(pending) > 0 && round < maxDispatchRounds; round++ {
		if ctx.Err() != nil {
			break
		}
		var members []*member
		for _, m := range c.live() {
			if !excluded[m.id] {
				members = append(members, m)
			}
		}
		if len(members) == 0 {
			break
		}
		if round == 0 {
			rep.Members = len(members)
		}
		// Rendezvous partition: each key goes to its highest-weight member.
		shards := make(map[string][]experiments.KeyedRequest)
		for _, p := range pending {
			owner := rankMembers(members, p.Key)[0]
			shards[owner.id] = append(shards[owner.id], p)
		}
		byID := make(map[string]*member, len(members))
		for _, m := range members {
			byID[m.id] = m
		}
		var (
			mu     sync.Mutex
			failed []experiments.KeyedRequest
			wg     sync.WaitGroup
		)
		for id, shard := range shards {
			rep.Shards++
			if round > 0 {
				rep.Stolen++
				c.addStolen(1)
			}
			wg.Add(1)
			go func(m *member, shard []experiments.KeyedRequest) {
				defer wg.Done()
				if err := c.runShard(ctx, m, shard, emit); err != nil {
					mu.Lock()
					failed = append(failed, shard...)
					excluded[m.id] = true
					mu.Unlock()
				}
			}(byID[id], shard)
		}
		wg.Wait()
		sort.Slice(failed, func(i, j int) bool { return failed[i].Key < failed[j].Key })
		pending = failed
	}
	rep.Unassigned = len(pending)
	return rep
}

// stragglerPoll is how often runShard re-checks its worker's liveness
// while waiting on the shard job, floored so tests with millisecond
// heartbeats do not spin.
func (c *Coordinator) stragglerPoll() time.Duration {
	poll := c.cfg.Heartbeat / 2
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	return poll
}

// runShard dispatches one shard to one member and waits for the warm job
// to finish, stealing the shard back if the member's lease lapses (it
// died) or StealAfter elapses (it straggles). The error return means
// "this shard needs re-issuing"; the worker itself may still finish its
// job later, which is harmless — the result fabric is content-addressed
// and last-wins, so a stolen-then-revived shard lands identical bytes.
func (c *Coordinator) runShard(ctx context.Context, m *member, shard []experiments.KeyedRequest, emit func(ShardEvent)) error {
	reqs := make([]experiments.Request, len(shard))
	for i, p := range shard {
		reqs[i] = p.Req
	}
	jobID, err := m.peer.SubmitWarm(ctx, reqs)
	if err != nil {
		emit(ShardEvent{Type: "steal", Worker: m.id, Addr: m.addr, Products: len(shard), Err: err})
		return err
	}
	emit(ShardEvent{Type: "dispatch", Worker: m.id, Addr: m.addr, JobID: jobID, Products: len(shard)})

	waitCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- m.peer.WaitJob(waitCtx, jobID) }()

	poll := time.NewTicker(c.stragglerPoll())
	defer poll.Stop()
	var steal *time.Timer
	var stealCh <-chan time.Time
	if c.cfg.StealAfter > 0 {
		steal = time.NewTimer(c.cfg.StealAfter)
		defer steal.Stop()
		stealCh = steal.C
	}
	for {
		select {
		case err := <-done:
			if err != nil {
				emit(ShardEvent{Type: "steal", Worker: m.id, Addr: m.addr, JobID: jobID, Products: len(shard), Err: err})
				return err
			}
			emit(ShardEvent{Type: "done", Worker: m.id, Addr: m.addr, JobID: jobID, Products: len(shard)})
			return nil
		case <-poll.C:
			if !c.alive(m.id) {
				cancel()
				<-done
				err := errDeadWorker
				emit(ShardEvent{Type: "steal", Worker: m.id, Addr: m.addr, JobID: jobID, Products: len(shard), Err: err})
				return err
			}
		case <-stealCh:
			cancel()
			<-done
			// Best-effort cancel so the straggler stops burning its own
			// CPU; its job finishing anyway cannot double-count (dedup by
			// content key, atomic last-wins publication).
			cctx, ccancel := context.WithTimeout(context.Background(), time.Second)
			_ = m.peer.CancelJob(cctx, jobID)
			ccancel()
			err := errStraggler
			emit(ShardEvent{Type: "steal", Worker: m.id, Addr: m.addr, JobID: jobID, Products: len(shard), Err: err})
			return err
		case <-ctx.Done():
			<-done
			return ctx.Err()
		}
	}
}

// Sentinel shard-steal causes (reported in ShardEvent.Err).
var (
	errDeadWorker = contextError("fleet: worker lease lapsed mid-shard")
	errStraggler  = contextError("fleet: shard exceeded StealAfter; stolen from straggler")
)

// contextError is a trivial constant error type.
type contextError string

func (e contextError) Error() string { return string(e) }
