package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mcbench/internal/buildinfo"
	"mcbench/internal/telemetry"
)

// Defaults for the coordinator's timing knobs.
const (
	// DefaultHeartbeat is the interval workers beat at when the config
	// leaves it zero.
	DefaultHeartbeat = 5 * time.Second
	// missedBeats is how many consecutive heartbeat intervals a member
	// may miss before it is reaped as dead.
	missedBeats = 3
)

// Config parameterises a Coordinator.
type Config struct {
	// Build is the coordinator's own build identity; joins must match it
	// exactly.
	Build buildinfo.Info
	// Source, TraceLen, Seed, Warmup and Sampling pin the lab identity
	// joins must match (nodes with different lab configs compute
	// different bytes for the same key). Sampling is the canonical
	// string of the lab's sampling spec ("exact" when disabled).
	Source   string
	TraceLen int
	Seed     int64
	Warmup   int
	Sampling string
	// Heartbeat is the interval granted to joining workers (0 →
	// DefaultHeartbeat). A member missing missedBeats consecutive
	// intervals is reaped.
	Heartbeat time.Duration
	// StealAfter bounds how long a dispatched shard may run before the
	// coordinator steals it from the straggler (0 → never steal on time,
	// only on death).
	StealAfter time.Duration
	// Dial opens a Peer for a worker's advertised address.
	Dial Dialer
}

// member is one registered worker.
type member struct {
	id       string
	addr     string
	peer     Peer
	lastBeat time.Time
}

// Coordinator tracks fleet membership and dispatches sharded warm work.
// All methods are safe for concurrent use.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*member // by id
	seq     int                // member id sequence

	stolen int64 // shards re-issued after death or straggle (for health)
}

// NewCoordinator creates a coordinator. Dial must be non-nil.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Sampling == "" {
		cfg.Sampling = "exact"
	}
	return &Coordinator{cfg: cfg, members: make(map[string]*member)}
}

// Heartbeat returns the interval the coordinator grants to workers.
func (c *Coordinator) Heartbeat() time.Duration { return c.cfg.Heartbeat }

// Join registers a worker. A mismatched build or lab identity fails with
// ErrIncompatible. Re-joining with an address already registered
// replaces the old membership (the worker restarted, or its previous
// lease was reaped and it is recovering) rather than accumulating a
// ghost entry.
func (c *Coordinator) Join(req JoinRequest) (*JoinResponse, error) {
	if req.Build != c.cfg.Build {
		return nil, fmt.Errorf("%w: worker build %s, coordinator build %s",
			ErrIncompatible, req.Build, c.cfg.Build)
	}
	if req.Sampling == "" {
		req.Sampling = "exact"
	}
	if req.Source != c.cfg.Source || req.TraceLen != c.cfg.TraceLen ||
		req.Seed != c.cfg.Seed || req.Warmup != c.cfg.Warmup ||
		req.Sampling != c.cfg.Sampling {
		return nil, fmt.Errorf("%w: worker lab (source=%q trace=%d seed=%d warmup=%d sampling=%s), coordinator lab (source=%q trace=%d seed=%d warmup=%d sampling=%s)",
			ErrIncompatible, req.Source, req.TraceLen, req.Seed, req.Warmup, req.Sampling,
			c.cfg.Source, c.cfg.TraceLen, c.cfg.Seed, c.cfg.Warmup, c.cfg.Sampling)
	}
	if req.Addr == "" {
		return nil, fmt.Errorf("fleet: join without an advertised address")
	}
	peer, err := c.cfg.Dial(req.Addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial %s: %w", req.Addr, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, m := range c.members {
		if m.addr == req.Addr {
			delete(c.members, id)
		}
	}
	c.seq++
	m := &member{
		id:       fmt.Sprintf("w%03d", c.seq),
		addr:     req.Addr,
		peer:     peer,
		lastBeat: time.Now(),
	}
	c.members[m.id] = m
	return &JoinResponse{ID: m.id, Heartbeat: c.cfg.Heartbeat}, nil
}

// Beat renews a member's liveness lease; false if the id is unknown
// (reaped, or the coordinator restarted) — the worker should re-join.
func (c *Coordinator) Beat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		return false
	}
	m.lastBeat = time.Now()
	return true
}

// Leave deregisters a member (unknown ids are a no-op).
func (c *Coordinator) Leave(id string) {
	c.mu.Lock()
	delete(c.members, id)
	c.mu.Unlock()
}

// live returns the live members (reaping any whose lease lapsed), sorted
// by id for deterministic iteration.
func (c *Coordinator) live() []*member {
	deadline := time.Now().Add(-time.Duration(missedBeats) * c.cfg.Heartbeat)
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*member
	for id, m := range c.members {
		if m.lastBeat.Before(deadline) {
			delete(c.members, id)
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// alive reports whether the member still holds a live lease. Used by
// in-flight shard dispatches to notice their worker died.
func (c *Coordinator) alive(id string) bool {
	deadline := time.Now().Add(-time.Duration(missedBeats) * c.cfg.Heartbeat)
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	return ok && !m.lastBeat.Before(deadline)
}

// Peers returns the number of live members.
func (c *Coordinator) Peers() int { return len(c.live()) }

// Stolen returns how many shards have been re-issued after a worker
// death or straggle.
func (c *Coordinator) Stolen() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stolen
}

// addStolen counts n re-issued shards.
func (c *Coordinator) addStolen(n int64) {
	c.mu.Lock()
	c.stolen += n
	c.mu.Unlock()
}

// MetricsFetcher is the optional Peer extension the coordinator's
// telemetry aggregation uses: a peer that can fetch the remote node's
// metrics snapshot (GET /metrics?format=json in production). Optional —
// asserted at scrape time — so Peer test doubles that predate it keep
// compiling; a peer without it scrapes as "not exposed", never an error.
type MetricsFetcher interface {
	FetchMetrics(ctx context.Context) (*telemetry.Snapshot, error)
}

// WorkerScrape is one worker's row of a fleet metrics scrape. Snapshot
// is nil when the peer does not implement MetricsFetcher or when Err is
// set (the scrape failed).
type WorkerScrape struct {
	ID           string
	Addr         string
	HeartbeatAge time.Duration
	Snapshot     *telemetry.Snapshot
	Err          error
}

// Scrape fetches every registered worker's metrics snapshot, in
// parallel, and returns the rows sorted by member id. Membership is
// snapshotted once under the lock (heartbeat ages included) and the
// network fan-out happens outside it, so a slow worker never blocks
// joins or beats. Dead-but-unreaped members appear with their stale
// heartbeat age — the caller sees the staleness rather than a silently
// shorter list.
func (c *Coordinator) Scrape(ctx context.Context) []WorkerScrape {
	now := time.Now()
	c.mu.Lock()
	rows := make([]WorkerScrape, 0, len(c.members))
	peers := make([]Peer, 0, len(c.members))
	for _, m := range c.members {
		rows = append(rows, WorkerScrape{ID: m.id, Addr: m.addr, HeartbeatAge: now.Sub(m.lastBeat)})
		peers = append(peers, m.peer)
	}
	c.mu.Unlock()
	sort.Sort(&scrapeSort{rows, peers})
	var wg sync.WaitGroup
	for i := range rows {
		mf, ok := peers[i].(MetricsFetcher)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(row *WorkerScrape, mf MetricsFetcher) {
			defer wg.Done()
			row.Snapshot, row.Err = mf.FetchMetrics(ctx)
		}(&rows[i], mf)
	}
	wg.Wait()
	return rows
}

// scrapeSort orders scrape rows (and their parallel peer slice) by id.
type scrapeSort struct {
	rows  []WorkerScrape
	peers []Peer
}

func (s *scrapeSort) Len() int           { return len(s.rows) }
func (s *scrapeSort) Less(i, j int) bool { return s.rows[i].ID < s.rows[j].ID }
func (s *scrapeSort) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.peers[i], s.peers[j] = s.peers[j], s.peers[i]
}

// Fetch retrieves the raw stored bytes of a content key from the fleet,
// trying live members in rendezvous order for the key (the owner first —
// if anyone computed the table, the owner did). It is the coordinator's
// read-through hook for its local store. Misses and per-peer errors fall
// through to the next candidate; exhausting the fleet is a plain miss.
func (c *Coordinator) Fetch(ctx context.Context, key string) ([]byte, bool, error) {
	for _, m := range rankMembers(c.live(), key) {
		data, ok, err := m.peer.FetchCache(ctx, key)
		if err == nil && ok {
			return data, true, nil
		}
		if ctx.Err() != nil {
			return nil, false, nil
		}
	}
	return nil, false, nil
}
