package fleet

// Coordinator, sharding and agent tests over in-memory fake peers: no
// HTTP, millisecond heartbeats, deterministic rendezvous assertions.
// The HTTP wiring on top of this package is exercised by
// internal/serve's fleet tests and the root package's API tests.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"mcbench/internal/buildinfo"
	"mcbench/internal/cache"
	"mcbench/internal/experiments"
)

// testBuild is the build identity fleet tests join with.
var testBuild = buildinfo.Info{Module: "mcbench", Version: "test", GoVersion: "go-test", Platform: "test/test"}

// fakeWorker is an in-memory Peer playing the worker role for a
// coordinator under test.
type fakeWorker struct {
	addr string

	mu        sync.Mutex
	shards    [][]experiments.Request // every SubmitWarm payload, in order
	jobs      int
	submitErr error
	waitErr   error
	blockWait bool // WaitJob blocks until its context is cancelled
	canceled  int
	cache     map[string][]byte
	fetched   []string
}

func (w *fakeWorker) Join(context.Context, JoinRequest) (*JoinResponse, error) {
	return nil, errors.New("fakeWorker is not a coordinator")
}
func (w *fakeWorker) Heartbeat(context.Context, string) error { return nil }
func (w *fakeWorker) Leave(context.Context, string) error     { return nil }

func (w *fakeWorker) SubmitWarm(_ context.Context, products []experiments.Request) (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.submitErr != nil {
		return "", w.submitErr
	}
	w.shards = append(w.shards, append([]experiments.Request(nil), products...))
	w.jobs++
	return fmt.Sprintf("%s-j%d", w.addr, w.jobs), nil
}

func (w *fakeWorker) WaitJob(ctx context.Context, _ string) error {
	w.mu.Lock()
	block, err := w.blockWait, w.waitErr
	w.mu.Unlock()
	if block {
		<-ctx.Done()
		return ctx.Err()
	}
	return err
}

func (w *fakeWorker) CancelJob(context.Context, string) error {
	w.mu.Lock()
	w.canceled++
	w.mu.Unlock()
	return nil
}

func (w *fakeWorker) FetchCache(_ context.Context, key string) ([]byte, bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fetched = append(w.fetched, key)
	data, ok := w.cache[key]
	return data, ok, nil
}

// received returns the distinct product keys the worker was ever asked
// to warm (flattened over all shards), using the request's Policy as a
// stand-in key (tests give each product a distinct policy).
func (w *fakeWorker) received() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, shard := range w.shards {
		for _, r := range shard {
			k := string(r.Policy)
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}

// fleetHarness wires a coordinator whose Dialer resolves addresses to
// the given fake workers.
func fleetHarness(t *testing.T, hb time.Duration, workers ...*fakeWorker) (*Coordinator, map[string]*fakeWorker) {
	t.Helper()
	byAddr := map[string]*fakeWorker{}
	for _, w := range workers {
		byAddr[w.addr] = w
	}
	c := NewCoordinator(Config{
		Build: testBuild, Source: "suite", TraceLen: 1000, Seed: 42, Warmup: 0,
		Heartbeat: hb,
		Dial: func(addr string) (Peer, error) {
			w, ok := byAddr[addr]
			if !ok {
				return nil, fmt.Errorf("unknown addr %s", addr)
			}
			return w, nil
		},
	})
	return c, byAddr
}

// joinReq is the compatible handshake for fleetHarness coordinators.
func joinReq(addr string) JoinRequest {
	return JoinRequest{Addr: addr, Build: testBuild, Source: "suite", TraceLen: 1000, Seed: 42}
}

// keyed builds a keyed plan of n distinct products (distinct policies,
// so fakeWorker.received can recover them).
func keyed(n int) []experiments.KeyedRequest {
	out := make([]experiments.KeyedRequest, n)
	for i := range out {
		p := fmt.Sprintf("P%02d", i)
		out[i] = experiments.KeyedRequest{
			Req: experiments.Request{Sim: experiments.SimBadco, Cores: 2, Policy: cache.PolicyName(p)},
			Key: "badco|c2|" + p,
		}
	}
	return out
}

// beatForever renews the member's lease on a short cadence until the
// test ends.
func beatForever(t *testing.T, c *Coordinator, id string, every time.Duration) {
	t.Helper()
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				c.Beat(id)
			}
		}
	}()
}

func TestRendezvousRanking(t *testing.T) {
	ms := []*member{{id: "w001"}, {id: "w002"}, {id: "w003"}}
	a := rankMembers(ms, "some-key")
	b := rankMembers(ms, "some-key")
	for i := range a {
		if a[i].id != b[i].id {
			t.Fatalf("ranking not deterministic: %v vs %v", a, b)
		}
	}
	// Minimal disruption: dropping one member must not move any key it
	// did not own.
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	ownerOf := func(members []*member, key string) string {
		return rankMembers(members, key)[0].id
	}
	without2 := []*member{ms[0], ms[2]}
	moved, owned2 := 0, 0
	for _, k := range keys {
		before := ownerOf(ms, k)
		after := ownerOf(without2, k)
		if before == "w002" {
			owned2++
			continue // must move, anywhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved that w002 did not own", moved)
	}
	if owned2 == 0 {
		t.Errorf("degenerate test: w002 owned no keys of %d", len(keys))
	}
}

func TestJoinCompatibility(t *testing.T) {
	w := &fakeWorker{addr: "w1:1"}
	c, _ := fleetHarness(t, time.Second, w)

	if _, err := c.Join(joinReq("w1:1")); err != nil {
		t.Fatalf("compatible join failed: %v", err)
	}

	bad := joinReq("w1:1")
	bad.Build.Version = "other"
	if _, err := c.Join(bad); !errors.Is(err, ErrIncompatible) {
		t.Errorf("build mismatch: got %v, want ErrIncompatible", err)
	}

	bad = joinReq("w1:1")
	bad.TraceLen = 9999
	if _, err := c.Join(bad); !errors.Is(err, ErrIncompatible) {
		t.Errorf("lab mismatch: got %v, want ErrIncompatible", err)
	}

	bad = joinReq("w1:1")
	bad.Sampling = "u10000d2000w2000"
	if _, err := c.Join(bad); !errors.Is(err, ErrIncompatible) {
		t.Errorf("sampling mismatch: got %v, want ErrIncompatible", err)
	}

	// An explicit "exact" and the legacy empty field are the same
	// identity: both mean an unsampled lab.
	ok := joinReq("w1:1")
	ok.Sampling = "exact"
	if _, err := c.Join(ok); err != nil {
		t.Errorf("explicit exact sampling rejected: %v", err)
	}

	bad = joinReq("")
	if _, err := c.Join(bad); err == nil || errors.Is(err, ErrIncompatible) {
		t.Errorf("empty addr: got %v, want a plain error", err)
	}
}

func TestRejoinReplacesByAddr(t *testing.T) {
	w := &fakeWorker{addr: "w1:1"}
	c, _ := fleetHarness(t, time.Second, w)

	r1, err := c.Join(joinReq("w1:1"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Join(joinReq("w1:1"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID == r2.ID {
		t.Errorf("rejoin granted the same id %s", r1.ID)
	}
	if n := c.Peers(); n != 1 {
		t.Errorf("after rejoin Peers() = %d, want 1 (old membership replaced)", n)
	}
	if c.Beat(r1.ID) {
		t.Errorf("stale membership %s still beats", r1.ID)
	}
	if !c.Beat(r2.ID) {
		t.Errorf("fresh membership %s rejected", r2.ID)
	}
}

func TestLeaseReaping(t *testing.T) {
	w := &fakeWorker{addr: "w1:1"}
	c, _ := fleetHarness(t, 10*time.Millisecond, w)
	resp, err := c.Join(joinReq("w1:1"))
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Peers(); n != 1 {
		t.Fatalf("Peers() = %d after join, want 1", n)
	}
	// Miss more than missedBeats intervals.
	time.Sleep(time.Duration(missedBeats+2) * 10 * time.Millisecond)
	if n := c.Peers(); n != 0 {
		t.Errorf("Peers() = %d after lease lapse, want 0", n)
	}
	if c.Beat(resp.ID) {
		t.Errorf("reaped member %s still beats", resp.ID)
	}
}

func TestWarmFleetHappyPath(t *testing.T) {
	ws := []*fakeWorker{{addr: "w1:1"}, {addr: "w2:2"}, {addr: "w3:3"}}
	c, _ := fleetHarness(t, time.Second, ws...)
	for _, w := range ws {
		if _, err := c.Join(joinReq(w.addr)); err != nil {
			t.Fatal(err)
		}
	}
	plan := keyed(9)
	// Duplicate the whole plan: dedup must collapse it.
	plan = append(plan, keyed(9)...)

	var events []ShardEvent
	var mu sync.Mutex
	rep := c.WarmFleet(context.Background(), plan, func(ev ShardEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	if rep.Members != 3 || rep.Products != 9 || rep.Stolen != 0 || rep.Unassigned != 0 {
		t.Errorf("report = %+v, want Members=3 Products=9 Stolen=0 Unassigned=0", rep)
	}
	var got []string
	for _, w := range ws {
		got = append(got, w.received()...)
	}
	sort.Strings(got)
	want := make([]string, 9)
	for i := range want {
		want[i] = fmt.Sprintf("P%02d", i)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("fleet warmed %v, want %v", got, want)
	}
	dispatches, dones := 0, 0
	for _, ev := range events {
		switch ev.Type {
		case "dispatch":
			dispatches++
		case "done":
			dones++
		case "steal":
			t.Errorf("unexpected steal event: %+v", ev)
		}
	}
	if dispatches != rep.Shards || dones != rep.Shards {
		t.Errorf("events: %d dispatches, %d dones, want %d each", dispatches, dones, rep.Shards)
	}
}

func TestWarmFleetStealsFromDeadWorker(t *testing.T) {
	dead := &fakeWorker{addr: "w1:1", blockWait: true}
	live := &fakeWorker{addr: "w2:2"}
	c, _ := fleetHarness(t, 20*time.Millisecond, dead, live)

	rd, err := c.Join(joinReq(dead.addr))
	if err != nil {
		t.Fatal(err)
	}
	rl, err := c.Join(joinReq(live.addr))
	if err != nil {
		t.Fatal(err)
	}
	_ = rd // the dead worker never beats again; its lease lapses mid-shard
	beatForever(t, c, rl.ID, 5*time.Millisecond)

	plan := keyed(8)
	rep := c.WarmFleet(context.Background(), plan, nil)

	if rep.Unassigned != 0 {
		t.Errorf("Unassigned = %d, want 0 (live worker should absorb stolen shards)", rep.Unassigned)
	}
	if rep.Stolen == 0 || c.Stolen() == 0 {
		t.Errorf("Stolen = %d (counter %d), want > 0", rep.Stolen, c.Stolen())
	}
	want := make([]string, 8)
	for i := range want {
		want[i] = fmt.Sprintf("P%02d", i)
	}
	if got := live.received(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("survivor warmed %v, want all of %v", got, want)
	}
}

func TestWarmFleetStealsFromStraggler(t *testing.T) {
	slow := &fakeWorker{addr: "w1:1", blockWait: true}
	fast := &fakeWorker{addr: "w2:2"}
	byAddr := map[string]*fakeWorker{slow.addr: slow, fast.addr: fast}
	c := NewCoordinator(Config{
		Build: testBuild, Source: "suite", TraceLen: 1000, Seed: 42,
		Heartbeat:  time.Second, // nobody dies
		StealAfter: 30 * time.Millisecond,
		Dial: func(addr string) (Peer, error) {
			return byAddr[addr], nil
		},
	})
	if _, err := c.Join(joinReq(slow.addr)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(joinReq(fast.addr)); err != nil {
		t.Fatal(err)
	}

	plan := keyed(8)
	rep := c.WarmFleet(context.Background(), plan, nil)

	if rep.Unassigned != 0 {
		t.Errorf("Unassigned = %d, want 0", rep.Unassigned)
	}
	if rep.Stolen == 0 {
		t.Errorf("Stolen = %d, want > 0 (straggler exceeded StealAfter)", rep.Stolen)
	}
	slow.mu.Lock()
	canceled := slow.canceled
	slow.mu.Unlock()
	if canceled == 0 {
		t.Errorf("straggler was never sent a cancel")
	}
	want := make([]string, 8)
	for i := range want {
		want[i] = fmt.Sprintf("P%02d", i)
	}
	if got := fast.received(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("fast worker warmed %v, want all of %v", got, want)
	}
}

func TestWarmFleetNoMembers(t *testing.T) {
	c, _ := fleetHarness(t, time.Second)
	rep := c.WarmFleet(context.Background(), keyed(5), nil)
	if rep.Members != 0 || rep.Shards != 0 || rep.Unassigned != 5 {
		t.Errorf("report = %+v, want everything unassigned with no members", rep)
	}
}

func TestWarmFleetSubmitFailureExcludesWorker(t *testing.T) {
	broken := &fakeWorker{addr: "w1:1", submitErr: errors.New("queue full")}
	ok := &fakeWorker{addr: "w2:2"}
	c, _ := fleetHarness(t, time.Second, broken, ok)
	if _, err := c.Join(joinReq(broken.addr)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(joinReq(ok.addr)); err != nil {
		t.Fatal(err)
	}
	rep := c.WarmFleet(context.Background(), keyed(8), nil)
	if rep.Unassigned != 0 {
		t.Errorf("Unassigned = %d, want 0", rep.Unassigned)
	}
	want := make([]string, 8)
	for i := range want {
		want[i] = fmt.Sprintf("P%02d", i)
	}
	if got := ok.received(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("healthy worker warmed %v, want all of %v", got, want)
	}
}

func TestFetchRankedFallback(t *testing.T) {
	ws := []*fakeWorker{
		{addr: "w1:1", cache: map[string][]byte{}},
		{addr: "w2:2", cache: map[string][]byte{}},
		{addr: "w3:3", cache: map[string][]byte{}},
	}
	c, byAddr := fleetHarness(t, time.Second, ws...)
	ids := map[string]*fakeWorker{} // member id → worker
	for _, w := range ws {
		resp, err := c.Join(joinReq(w.addr))
		if err != nil {
			t.Fatal(err)
		}
		ids[resp.ID] = byAddr[w.addr]
	}

	const key = "badco|c2|LRU"
	// Plant the bytes on the SECOND-ranked member only: Fetch must fall
	// through the owner's miss and find them.
	ranked := rankMembers(c.live(), key)
	second := ids[ranked[1].id]
	second.mu.Lock()
	second.cache[key] = []byte("table-bytes")
	second.mu.Unlock()

	data, ok, err := c.Fetch(context.Background(), key)
	if err != nil || !ok || string(data) != "table-bytes" {
		t.Fatalf("Fetch = %q, %v, %v; want table-bytes via fallback", data, ok, err)
	}
	owner := ids[ranked[0].id]
	owner.mu.Lock()
	probedOwner := len(owner.fetched) > 0
	owner.mu.Unlock()
	if !probedOwner {
		t.Errorf("owner was never probed before the fallback")
	}

	if _, ok, err := c.Fetch(context.Background(), "absent-key"); ok || err != nil {
		t.Errorf("Fetch(absent) = ok=%v err=%v, want plain miss", ok, err)
	}
}

// fakeCoordinator is an in-memory Peer playing the coordinator role for
// an Agent under test.
type fakeCoordinator struct {
	mu       sync.Mutex
	joins    int
	joinErr  error
	beatErr  error
	beats    int
	leaves   int
	interval time.Duration
}

func (f *fakeCoordinator) Join(context.Context, JoinRequest) (*JoinResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.joins++
	if f.joinErr != nil {
		return nil, f.joinErr
	}
	return &JoinResponse{ID: fmt.Sprintf("w%03d", f.joins), Heartbeat: f.interval}, nil
}

func (f *fakeCoordinator) Heartbeat(context.Context, string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.beats++
	return f.beatErr
}

func (f *fakeCoordinator) Leave(context.Context, string) error {
	f.mu.Lock()
	f.leaves++
	f.mu.Unlock()
	return nil
}

func (f *fakeCoordinator) SubmitWarm(context.Context, []experiments.Request) (string, error) {
	return "", errors.New("not a worker")
}
func (f *fakeCoordinator) WaitJob(context.Context, string) error   { return nil }
func (f *fakeCoordinator) CancelJob(context.Context, string) error { return nil }
func (f *fakeCoordinator) FetchCache(context.Context, string) ([]byte, bool, error) {
	return nil, false, nil
}

func TestAgentJoinsAndBeats(t *testing.T) {
	fc := &fakeCoordinator{interval: 10 * time.Millisecond}
	a := NewAgent(AgentConfig{Coordinator: fc, Join: joinReq("me:1")})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Run(ctx) }()

	deadline := time.After(2 * time.Second)
	for {
		fc.mu.Lock()
		beats := fc.beats
		fc.mu.Unlock()
		if beats >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("agent never heartbeat twice")
		case <-time.After(5 * time.Millisecond):
		}
	}
	id, lastErr := a.Status()
	if id == "" || lastErr != nil {
		t.Errorf("Status() = %q, %v; want joined and healthy", id, lastErr)
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("Run returned %v on clean shutdown, want nil", err)
	}
	fc.mu.Lock()
	leaves := fc.leaves
	fc.mu.Unlock()
	if leaves == 0 {
		t.Errorf("agent never sent Leave on shutdown")
	}
}

func TestAgentRejoinsAfterLostMembership(t *testing.T) {
	fc := &fakeCoordinator{interval: 5 * time.Millisecond, beatErr: errors.New("unknown fleet member")}
	a := NewAgent(AgentConfig{Coordinator: fc, Join: joinReq("me:1"), RetryEvery: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.Run(ctx) }()

	deadline := time.After(2 * time.Second)
	for {
		fc.mu.Lock()
		joins := fc.joins
		fc.mu.Unlock()
		if joins >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("agent never re-joined after failing heartbeats")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("Run returned %v, want nil", err)
	}
}

func TestAgentFatalOnIncompatible(t *testing.T) {
	fc := &fakeCoordinator{joinErr: fmt.Errorf("%w: mixed versions", ErrIncompatible)}
	a := NewAgent(AgentConfig{Coordinator: fc, Join: joinReq("me:1")})
	err := a.Run(context.Background())
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("Run = %v, want ErrIncompatible", err)
	}
	if _, lastErr := a.Status(); !errors.Is(lastErr, ErrIncompatible) {
		t.Errorf("Status lastErr = %v, want ErrIncompatible", lastErr)
	}
}

// BenchmarkFleetCampaign measures the coordinator's pure orchestration
// cost — rendezvous partitioning, shard dispatch, event fan-out and the
// steal timers — over in-process peers that complete instantly, so the
// reported time is the fabric's per-campaign overhead, not simulation.
func BenchmarkFleetCampaign(b *testing.B) {
	ws := []*fakeWorker{{addr: "w1:1"}, {addr: "w2:2"}, {addr: "w3:3"}, {addr: "w4:4"}}
	byAddr := map[string]*fakeWorker{}
	for _, w := range ws {
		byAddr[w.addr] = w
	}
	c := NewCoordinator(Config{
		Build: testBuild, Source: "suite", TraceLen: 1000, Seed: 42,
		Heartbeat: time.Hour, // no reaping mid-benchmark
		Dial: func(addr string) (Peer, error) {
			w, ok := byAddr[addr]
			if !ok {
				return nil, fmt.Errorf("unknown addr %s", addr)
			}
			return w, nil
		},
	})
	for _, w := range ws {
		if _, err := c.Join(joinReq(w.addr)); err != nil {
			b.Fatal(err)
		}
	}
	const products = 32
	plan := keyed(products)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := c.WarmFleet(ctx, plan, func(ShardEvent) {})
		if rep.Unassigned != 0 || rep.Products != products || rep.Stolen != 0 {
			b.Fatalf("report %+v", rep)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*products), "ns/product")
}
