package fleet

import (
	"context"
	"errors"
	"sync"
	"time"
)

// AgentConfig parameterises a worker's membership agent.
type AgentConfig struct {
	// Coordinator is the peer handle for the coordinator node.
	Coordinator Peer
	// Join is the registration handshake to present (the agent's own
	// advertised address, build and lab identity).
	Join JoinRequest
	// RetryEvery is the delay between failed join attempts (0 → 1s).
	RetryEvery time.Duration
}

// Agent maintains a worker's fleet membership: join, heartbeat at the
// granted interval, re-join when the coordinator forgets us (restart or
// lease reaped), leave on shutdown. A join rejected as incompatible is
// fatal — version or lab-config skew cannot heal by retrying.
type Agent struct {
	cfg AgentConfig

	mu       sync.Mutex
	memberID string // "" until joined
	lastErr  error  // last join/heartbeat failure, for health reporting
}

// NewAgent creates an agent (call Run to start it).
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = time.Second
	}
	return &Agent{cfg: cfg}
}

// Status reports the agent's current membership ("" when not joined)
// and the last membership error, for /healthz.
func (a *Agent) Status() (memberID string, lastErr error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.memberID, a.lastErr
}

func (a *Agent) set(id string, err error) {
	a.mu.Lock()
	a.memberID = id
	a.lastErr = err
	a.mu.Unlock()
}

// Run drives the membership loop until the context is cancelled (normal
// shutdown: returns nil after a best-effort Leave) or the coordinator
// rejects the worker as incompatible (returns the error — the serve
// layer fails startup loudly rather than running a poisoned fleet).
func (a *Agent) Run(ctx context.Context) error {
	for {
		resp, err := a.cfg.Coordinator.Join(ctx, a.cfg.Join)
		if err != nil {
			if errors.Is(err, ErrIncompatible) {
				a.set("", err)
				return err
			}
			a.set("", err)
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(a.cfg.RetryEvery):
			}
			continue
		}
		a.set(resp.ID, nil)
		interval := resp.Heartbeat
		if interval <= 0 {
			interval = DefaultHeartbeat
		}
		if !a.beatLoop(ctx, resp.ID, interval) {
			// Context cancelled: deregister politely and stop.
			lctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_ = a.cfg.Coordinator.Leave(lctx, resp.ID)
			cancel()
			a.set("", nil)
			return nil
		}
		// Heartbeat rejected or failing: membership lost, re-join.
	}
}

// beatLoop heartbeats until the context ends (returns false) or the
// membership is lost (returns true — caller re-joins). A transient
// transport error does not immediately forfeit membership: the lease
// tolerates missedBeats intervals, so keep beating until one lands or
// the coordinator explicitly rejects the id.
func (a *Agent) beatLoop(ctx context.Context, id string, interval time.Duration) (rejoin bool) {
	t := time.NewTicker(interval)
	defer t.Stop()
	fails := 0
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			err := a.cfg.Coordinator.Heartbeat(ctx, id)
			if err == nil {
				fails = 0
				a.set(id, nil)
				continue
			}
			if ctx.Err() != nil {
				return false
			}
			fails++
			a.set(id, err)
			if fails >= missedBeats {
				// Either the coordinator forgot us (restart, reap) or it
				// is unreachable long enough that it will; re-join either
				// way.
				return true
			}
		}
	}
}
