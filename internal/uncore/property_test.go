package uncore

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mcbench/internal/cache"
)

// Property: every access completes at or after now + LLC latency, and
// identical request sequences produce identical completion sequences.
func TestAccessCompletionProperty(t *testing.T) {
	f := func(seed int64) bool {
		mk := func() *Uncore { return MustNew(ConfigFor(2, cache.DIP)) }
		u1, u2 := mk(), mk()
		rng := rand.New(rand.NewSource(seed))
		now := uint64(0)
		for i := 0; i < 400; i++ {
			core := rng.Intn(2)
			vaddr := uint64(rng.Intn(1 << 22))
			write := rng.Intn(4) == 0
			pc := uint64(0x400000 + rng.Intn(64)*8)
			d1 := u1.Access(core, pc, vaddr, write, false, now)
			d2 := u2.Access(core, pc, vaddr, write, false, now)
			if d1 != d2 {
				return false // nondeterministic
			}
			if d1 < now+u1.cfg.LLCLatency {
				return false // faster than an LLC hit
			}
			now += uint64(rng.Intn(50))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: a second access to the same line at/after the first one's
// completion is always a cheap hit (the fill really installed the line).
func TestFillInstallsLineProperty(t *testing.T) {
	f := func(seed int64) bool {
		u := MustNew(ConfigFor(1, cache.LRU))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			vaddr := uint64(rng.Intn(1 << 20))
			done := u.Access(0, 0x500, vaddr, false, false, 0)
			again := u.Access(0, 0x500, vaddr, false, false, done)
			if again != done+u.cfg.LLCLatency {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: the MSHR file throttles miss bursts. With a file of size M, a
// burst of simultaneous misses is serviced at most M at a time, so the
// i-th completion (in completion order) cannot land before the (i-M)-th
// completion plus the DRAM access time. A larger file never makes any
// fill of the same burst slower.
func TestMSHRBoundProperty(t *testing.T) {
	const burstLen = 12
	burst := func(mshrs int) []uint64 {
		cfg := ConfigFor(1, cache.LRU)
		cfg.MSHRs = mshrs
		u := MustNew(cfg)
		// Isolate demand fills from prefetch traffic (clearing prefSS so
		// the devirtualized path cannot resurrect the real prefetcher).
		u.pref, u.prefSS = cache.None{}, nil
		dones := make([]uint64, 0, burstLen)
		for i := 0; i < burstLen; i++ {
			// Spread addresses widely so no two misses merge.
			vaddr := uint64(i) * 131072
			dones = append(dones, u.Access(0, uint64(0x100+i*88), vaddr, false, false, 0))
		}
		sort.Slice(dones, func(a, b int) bool { return dones[a] < dones[b] })
		return dones
	}

	small, big := burst(4), burst(16)
	cfg := ConfigFor(1, cache.LRU)
	for i, done := range small {
		if i >= 4 && done < small[i-4]+cfg.DRAMLatency {
			t.Errorf("fill %d completed at %d, before predecessor %d (at %d) freed an MSHR",
				i, done, i-4, small[i-4])
		}
	}
	for i := range small {
		if big[i] > small[i] {
			t.Errorf("fill %d: 16 MSHRs completed at %d, later than 4 MSHRs at %d",
				i, big[i], small[i])
		}
	}
	if last := burstLen - 1; big[last] >= small[last] {
		t.Errorf("16-MSHR burst not faster overall: %d vs %d", big[last], small[last])
	}
}

func TestResetStatsKeepsState(t *testing.T) {
	u := MustNew(ConfigFor(1, cache.LRU))
	done := u.Access(0, 0x100, 0x4000, false, false, 0)
	u.ResetStats()
	if s := u.Stats(); s.Requests != 0 || s.DemandMisses != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
	// The line must still be resident (state preserved).
	if got := u.Access(0, 0x100, 0x4000, false, false, done); got != done+u.Config().LLCLatency {
		t.Fatal("ResetStats dropped cache state")
	}
}
