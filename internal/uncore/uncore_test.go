package uncore

import (
	"testing"

	"mcbench/internal/cache"
)

func testConfig() Config {
	cfg := ConfigFor(2, cache.LRU)
	cfg.PrefetchDegree = 1
	return cfg
}

func TestConfigForMatchesTableII(t *testing.T) {
	// LLC capacities are the paper's scaled by 1/4 (see ConfigFor);
	// latencies and the fixed parameters are the paper's.
	cases := []struct {
		cores   int
		bytes   int
		latency uint64
	}{
		{1, 256 << 10, 5},
		{2, 256 << 10, 5},
		{4, 512 << 10, 6},
		{8, 1 << 20, 7},
	}
	for _, c := range cases {
		cfg := ConfigFor(c.cores, cache.LRU)
		if cfg.LLCBytes != c.bytes || cfg.LLCLatency != c.latency {
			t.Errorf("ConfigFor(%d) = %d bytes / %d cycles, want %d / %d",
				c.cores, cfg.LLCBytes, cfg.LLCLatency, c.bytes, c.latency)
		}
		if cfg.LLCWays != 16 || cfg.MSHRs != 16 || cfg.WriteBufEnts != 8 || cfg.DRAMLatency != 200 {
			t.Errorf("ConfigFor(%d) fixed parameters wrong: %+v", c.cores, cfg)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 0
	if _, err := New(cfg); err == nil {
		t.Error("New accepted zero cores")
	}
	cfg = testConfig()
	cfg.MSHRs = 0
	if _, err := New(cfg); err == nil {
		t.Error("New accepted zero MSHRs")
	}
	cfg = testConfig()
	cfg.Policy = "nope"
	if _, err := New(cfg); err == nil {
		t.Error("New accepted unknown policy")
	}
	cfg = testConfig()
	cfg.LLCBytes = 12345
	if _, err := New(cfg); err == nil {
		t.Error("New accepted bad LLC size")
	}
}

func TestTranslateAllocatesDistinctPagesPerCore(t *testing.T) {
	u := MustNew(testConfig())
	a0 := u.Translate(0, 0x1000)
	a1 := u.Translate(1, 0x1000)
	if a0 == a1 {
		t.Fatal("two cores share a physical page for the same vaddr")
	}
	// Stable on re-translation.
	if got := u.Translate(0, 0x1000); got != a0 {
		t.Fatal("translation not stable")
	}
	// Same page, different offset.
	if got := u.Translate(0, 0x1008); got != a0+8 {
		t.Fatalf("offset broken: %#x vs %#x", got, a0+8)
	}
}

func TestMissThenHitLatency(t *testing.T) {
	cfg := testConfig()
	u := MustNew(cfg)
	const vaddr = 0x4000
	done := u.Access(0, 0x99, vaddr, false, false, 0)
	// A cold miss pays LLC lookup + command + DRAM + line transfer.
	minMiss := cfg.LLCLatency + cfg.DRAMLatency
	if done <= minMiss {
		t.Fatalf("miss completed at %d, want > %d", done, minMiss)
	}
	// After the fill, the same line hits at LLC latency.
	done2 := u.Access(0, 0x99, vaddr, false, false, done)
	if got := done2 - done; got != cfg.LLCLatency {
		t.Fatalf("hit latency %d, want %d", got, cfg.LLCLatency)
	}
	s := u.Stats()
	if s.Requests != 2 || s.DemandMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMSHRMergesSameLine(t *testing.T) {
	u := MustNew(testConfig())
	a := u.Access(0, 1, 0x8000, false, false, 0)
	b := u.Access(0, 1, 0x8010, false, false, 1) // same line, while in flight
	if b > a {
		t.Fatalf("merged secondary miss completes at %d after primary %d", b, a)
	}
	if s := u.Stats(); s.DRAMRequests != 1 {
		t.Fatalf("merge still went to DRAM: %d requests", s.DRAMRequests)
	}
}

func TestMSHRCapacityDelays(t *testing.T) {
	cfg := testConfig()
	cfg.MSHRs = 2
	cfg.PrefetchDegree = 1
	u := MustNew(cfg)
	// Use pointer-chase-like PCs/addresses to avoid prefetcher noise: the
	// stride between requests varies.
	addrs := []uint64{0x10000, 0x31000, 0x77000, 0x120000}
	var last uint64
	for i, a := range addrs {
		last = u.Access(0, uint64(0x100+i*64), a, false, false, 0)
	}
	// With 2 MSHRs the 4 misses cannot all overlap: the last one must
	// complete later than an unconstrained miss would.
	unconstrained := MustNew(testConfig()).Access(0, 0x100, 0x10000, false, false, 0)
	if last <= unconstrained {
		t.Fatalf("MSHR-limited miss completed at %d, want > %d", last, unconstrained)
	}
}

func TestSharedLLCContention(t *testing.T) {
	// Each core's footprint is 3/4 of the LLC. Alone, a second pass over
	// the footprint mostly hits. With a co-runner, the combined 1.5x
	// footprint causes capacity evictions, so the second pass re-fetches
	// from DRAM: contention must show up as extra memory traffic.
	run := func(cores int) uint64 {
		cfg := testConfig()
		u := MustNew(cfg)
		lines := cfg.LLCBytes / cache.LineSize * 3 / 4
		now := uint64(0)
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < lines; i++ {
				for c := 0; c < cores; c++ {
					// Pointer-chase-like permuted order defeats the
					// prefetchers so capacity behaviour dominates.
					a := uint64((i*7919+13)%lines) * cache.LineSize
					now = u.Access(c, uint64(0x100+c), a, false, false, now)
				}
			}
		}
		return u.Stats().DRAMRequests
	}
	solo := run(1)
	duo := run(2)
	if duo < solo*2+solo/2 {
		t.Errorf("co-scheduled DRAM requests %d, want well above 2x solo (%d)", duo, 2*solo)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := testConfig()
	cfg.LLCBytes = 64 * 1024 // small LLC to force evictions quickly
	u := MustNew(cfg)
	now := uint64(0)
	lines := cfg.LLCBytes / cache.LineSize * 2
	for i := 0; i < lines; i++ {
		now = u.Access(0, 0x300, uint64(i*cache.LineSize), true, false, now)
	}
	if s := u.Stats(); s.Writebacks == 0 {
		t.Fatal("dirty evictions produced no writebacks")
	}
}

func TestPrefetcherReducesStreamMisses(t *testing.T) {
	run := func(degree int) uint64 {
		cfg := testConfig()
		cfg.PrefetchDegree = degree
		u := MustNew(cfg)
		now := uint64(0)
		// Sequential stream with ~64 cycles of compute between accesses:
		// a deeper prefetcher has time to run ahead of demand, a
		// degree-1 prefetcher's fills are still in flight when demand
		// arrives, so its accesses wait longer.
		var totalWait uint64
		for i := 0; i < 2000; i++ {
			done := u.Access(0, 0x500, uint64(i*cache.LineSize), false, false, now)
			totalWait += done - now
			now += 64
		}
		return totalWait
	}
	low := run(1)
	high := run(4)
	if high >= low {
		t.Errorf("degree-4 prefetch total wait %d not below degree-1 wait %d", high, low)
	}
}

func TestFixedLatency(t *testing.T) {
	f := &FixedLatency{Lat: 42}
	if got := f.Access(0, 0, 0x1000, false, false, 100); got != 142 {
		t.Errorf("FixedLatency access = %d, want 142", got)
	}
	if f.N != 1 {
		t.Errorf("request count %d", f.N)
	}
}

func TestAccessPanicsOnBadCore(t *testing.T) {
	u := MustNew(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range core")
		}
	}()
	u.Access(5, 0, 0, false, false, 0)
}
