package uncore

// Checkpoint support: an Uncore's State deep-copies the LLC (lines,
// policy metadata, statistics), the bus and DRAM cursors, the MSHR file,
// the write buffer, the per-core page tables with the bump allocator's
// position, the translation caches and the LLC prefetchers into a
// reusable buffer. pfScratch is deliberately not state — it is dead
// between Access calls. Fields are exported so snapshots survive
// encoding/gob persistence; page tables are flattened to parallel slices
// because gob cannot be trusted with map iteration order (the contents,
// not the order, are the state). Snapshot into a warmed buffer and
// Restore are allocation-free as long as the page tables have not grown
// past the buffer's capacity.

import (
	"fmt"

	"mcbench/internal/cache"
	"mcbench/internal/mem"
)

// PageTableState is one core's page table, flattened for persistence.
// Entry i maps VPages[i] -> PPages[i]; order is unspecified.
type PageTableState struct {
	VPages []uint64
	PPages []uint64
}

// State is a reusable deep snapshot of an Uncore.
type State struct {
	Stats Stats // raw counters (derived fields are recomputed by Stats())

	LLC  cache.State
	Bus  mem.BusState
	DRAM mem.DRAMState
	Pref cache.StrideStreamState

	MSHRLine []uint64
	MSHRDone []uint64
	MSHRMax  uint64

	WriteBuf []uint64

	PageTables []PageTableState
	NextPage   uint64

	XlatVPage []uint64
	XlatPPage []uint64

	PropLine [16]uint64
	PropGen  [16]uint64
}

// Snapshot deep-copies the uncore's mutable state into the buffer. The
// first call grows the buffer's slices; subsequent calls allocate nothing
// unless a page table outgrew its previous capacity.
func (u *Uncore) Snapshot(into *State) {
	if u.prefSS == nil {
		panic("uncore: cannot snapshot a non-standard LLC prefetcher")
	}
	into.Stats = u.stats
	u.llc.Snapshot(&into.LLC)
	u.bus.Snapshot(&into.Bus)
	u.dram.Snapshot(&into.DRAM)
	u.prefSS.Snapshot(&into.Pref)

	into.MSHRLine = append(into.MSHRLine[:0], u.mshrLine...)
	into.MSHRDone = append(into.MSHRDone[:0], u.mshrDone...)
	into.MSHRMax = u.mshrMax
	into.WriteBuf = append(into.WriteBuf[:0], u.writeBuf...)

	if len(into.PageTables) != len(u.pageTables) {
		into.PageTables = make([]PageTableState, len(u.pageTables))
	}
	for i, pt := range u.pageTables {
		ps := &into.PageTables[i]
		ps.VPages = ps.VPages[:0]
		ps.PPages = ps.PPages[:0]
		for v, p := range pt {
			ps.VPages = append(ps.VPages, v)
			ps.PPages = append(ps.PPages, p)
		}
	}
	into.NextPage = u.nextPage

	into.XlatVPage = into.XlatVPage[:0]
	into.XlatPPage = into.XlatPPage[:0]
	for i := range u.xlat {
		into.XlatVPage = append(into.XlatVPage, u.xlat[i].vpage)
		into.XlatPPage = append(into.XlatPPage, u.xlat[i].ppage)
	}

	into.PropLine = u.propLine
	into.PropGen = u.propGen
}

// Restore overwrites the uncore's mutable state from the buffer. The
// target must share the snapshot source's configuration; the page-table
// maps are cleared and refilled in place (their buckets are retained, so
// restoring is allocation-free at steady state).
func (u *Uncore) Restore(from *State) {
	if u.prefSS == nil {
		panic("uncore: cannot restore a non-standard LLC prefetcher")
	}
	if len(from.PageTables) != len(u.pageTables) {
		panic(fmt.Sprintf("uncore: restore across core counts (%d -> %d)",
			len(from.PageTables), len(u.pageTables)))
	}
	u.stats = from.Stats
	u.llc.Restore(&from.LLC)
	u.bus.Restore(&from.Bus)
	u.dram.Restore(&from.DRAM)
	u.prefSS.Restore(&from.Pref)

	copy(u.mshrLine, from.MSHRLine)
	copy(u.mshrDone, from.MSHRDone)
	u.mshrMax = from.MSHRMax
	u.writeBuf = append(u.writeBuf[:0], from.WriteBuf...)

	for i, ps := range from.PageTables {
		pt := u.pageTables[i]
		clear(pt)
		for j, v := range ps.VPages {
			pt[v] = ps.PPages[j]
		}
	}
	u.nextPage = from.NextPage

	for i := range u.xlat {
		u.xlat[i].vpage = from.XlatVPage[i]
		u.xlat[i].ppage = from.XlatPPage[i]
	}

	u.propLine = from.PropLine
	u.propGen = from.PropGen
}

// SetPolicy swaps the LLC's replacement policy for a fresh instance of
// the named policy seeded with seed, keeping the cache contents (lines,
// dirtiness, statistics). It is the shared-warmup sweep's fan-out hook:
// warm once under a base policy, snapshot, then restore + SetPolicy for
// each variant.
func (u *Uncore) SetPolicy(name cache.PolicyName, seed int64) error {
	pol, err := cache.NewPolicy(name, seed)
	if err != nil {
		return err
	}
	if err := u.llc.SetPolicy(pol); err != nil {
		return err
	}
	u.cfg.Policy = name
	u.cfg.PolicySeed = seed
	return nil
}
