// Package uncore models the shared part of the simulated CMP: the
// last-level cache with its replacement policy, MSHRs, write buffer and
// prefetchers, the front-side bus and the DRAM (Table II of the paper).
//
// Both the detailed core model (package cpu) and the approximate BADCO
// machines (package badco) drive the exact same uncore, as in the paper.
package uncore

import (
	"fmt"

	"mcbench/internal/cache"
	"mcbench/internal/mem"
)

// Memory is the interface cores use to talk to the memory hierarchy below
// their private L1 caches. All times are core cycles.
type Memory interface {
	// Access services a request from core for the line containing vaddr,
	// issued at time now. pc is the requesting instruction address (used
	// by prefetchers), write marks stores/RFOs and prefetch marks
	// speculative requests. It returns the completion time.
	Access(core int, pc, vaddr uint64, write, prefetch bool, now uint64) uint64
}

// PageSize is the virtual memory page size (4 kB, Table I).
const PageSize = 4096

// Config describes one uncore instance.
type Config struct {
	Cores          int
	LLCBytes       int
	LLCWays        int
	LLCLatency     uint64 // hit latency in core cycles
	MSHRs          int    // outstanding misses (16 in the paper)
	WriteBufEnts   int    // LLC write buffer entries (8 in the paper)
	DRAMLatency    uint64 // core cycles (200 in the paper)
	Bus            mem.BusConfig
	Policy         cache.PolicyName
	PolicySeed     int64
	PrefetchDegree int // degree of the LLC stride/stream prefetchers
}

// ConfigFor returns the Table II uncore for the given core count (1 core
// shares the 2-core sizing) and replacement policy.
//
// LLC capacities are scaled to 1/4 of the paper's (256 kB / 512 kB / 1 MB
// for 2 / 4 / 8 cores) to match the 10⁻³ trace-length scaling: a 100 k-µop
// trace touches ~10⁻¹ of the data footprint a 100 M-instruction run
// would, so a proportionally smaller LLC preserves the paper's capacity
// pressure — which is what differentiates replacement policies.
// Latencies, associativity, MSHRs and the write buffer keep the paper's
// values.
func ConfigFor(cores int, policy cache.PolicyName) Config {
	cfg := Config{
		Cores:          cores,
		LLCWays:        16,
		MSHRs:          16,
		WriteBufEnts:   8,
		DRAMLatency:    200,
		Bus:            mem.DefaultBusConfig(),
		Policy:         policy,
		PolicySeed:     12345,
		PrefetchDegree: 2,
	}
	switch {
	case cores <= 2:
		cfg.LLCBytes = 256 << 10
		cfg.LLCLatency = 5
	case cores <= 4:
		cfg.LLCBytes = 512 << 10
		cfg.LLCLatency = 6
	default:
		cfg.LLCBytes = 1 << 20
		cfg.LLCLatency = 7
	}
	return cfg
}

// Stats aggregates uncore activity.
type Stats struct {
	Requests       uint64 // demand requests received
	DemandMisses   uint64 // demand requests that missed the LLC
	PrefetchIssued uint64 // prefetch requests sent to memory
	Writebacks     uint64 // dirty lines written back
	LLC            cache.Stats
	BusBusyCycles  uint64
	DRAMRequests   uint64
}

// Uncore is the shared LLC + bus + DRAM assembly.
type Uncore struct {
	cfg  Config
	llc  *cache.Cache
	bus  *mem.Bus
	dram *mem.DRAM
	pref cache.Prefetcher
	// prefSS is pref devirtualized: non-nil when pref is the standard
	// LLC stride+stream pairing, which the demand path then calls
	// directly. Tests that swap pref must clear it.
	prefSS *cache.StrideStreamPrefetcher
	stats  Stats

	// The MSHR file: fixed parallel arrays of in-flight fills (line
	// address and completion time per slot), so each scan walks one dense
	// strip of words. A slot whose completion time is at or before "now"
	// is free. The fixed arrays keep the hot path free of map traffic.
	mshrLine []uint64
	mshrDone []uint64

	// MSHR-pressure prefetch-drop calibration (see prefetchFunctional):
	// the timed path counts proposals reaching its pressure check and
	// those that issue; the functional path replays the observed rate
	// through the ffPfAcc accumulator.
	pfCand   uint64
	pfIssued uint64
	ffPfAcc  float64
	// mshrMax is the latest completion time ever booked: once "now"
	// passes it the file is provably empty, and the lookup scans (which
	// run on every LLC hit) short-circuit.
	mshrMax uint64

	// writeBuf holds the drain-completion times of in-flight writebacks.
	writeBuf []uint64

	// pageTables give each core its own virtual address space; pages are
	// allocated from a global bump allocator on first touch, so identical
	// benchmarks on different cores use distinct physical lines.
	pageTables []map[uint64]uint64
	nextPage   uint64

	// xlat is a per-core direct-mapped translation cache in front of the
	// page tables (page-level locality makes it hit most of the time,
	// keeping map lookups off the hot path). It is a pure memo: physical
	// pages are still allocated by the bump allocator in first-touch
	// order, so results are unchanged. Row-major by core.
	xlat []xlatEntry

	// pfScratch detaches prefetch proposals from the prefetcher's reused
	// buffer before they are issued. An Uncore serves one simulation
	// goroutine, so a single reusable scratch keeps the demand path
	// allocation-free.
	pfScratch []uint64

	// propLine/propGen form an exact filter over prefetcher proposals:
	// propLine[h] was observed resident in the LLC while its content
	// generation was propGen[h]. Trained streams re-propose the lines
	// they just prefetched on almost every access (>90% of proposals are
	// already-resident no-ops), and as long as the LLC generation is
	// unchanged a previously verified line is provably still resident,
	// so the proposal can be skipped without touching the cache.
	propLine [16]uint64
	propGen  [16]uint64
}

// xlatEntries is the per-core translation-cache size (a power of two).
const xlatEntries = 512

// xlatEntry is one cached vpage -> ppage translation.
type xlatEntry struct {
	vpage uint64 // vpage+1, so zero means empty
	ppage uint64
}

// New builds an uncore from cfg.
func New(cfg Config) (*Uncore, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("uncore: %d cores", cfg.Cores)
	}
	if cfg.MSHRs <= 0 || cfg.WriteBufEnts <= 0 {
		return nil, fmt.Errorf("uncore: MSHRs/write buffer must be positive")
	}
	pol, err := cache.NewPolicy(cfg.Policy, cfg.PolicySeed)
	if err != nil {
		return nil, err
	}
	llc, err := cache.New("LLC", cfg.LLCBytes, cfg.LLCWays, pol)
	if err != nil {
		return nil, err
	}
	bus, err := mem.NewBus(cfg.Bus)
	if err != nil {
		return nil, err
	}
	tables := make([]map[uint64]uint64, cfg.Cores)
	for i := range tables {
		tables[i] = make(map[uint64]uint64)
	}
	pref := cache.NewStrideStream(cfg.PrefetchDegree)
	return &Uncore{
		cfg:        cfg,
		llc:        llc,
		bus:        bus,
		dram:       mem.NewDRAM(cfg.DRAMLatency),
		pref:       pref,
		prefSS:     pref,
		mshrLine:   make([]uint64, cfg.MSHRs),
		mshrDone:   make([]uint64, cfg.MSHRs),
		writeBuf:   make([]uint64, 0, cfg.WriteBufEnts),
		pageTables: tables,
		nextPage:   1, // keep physical page 0 unused
		xlat:       make([]xlatEntry, cfg.Cores*xlatEntries),
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Uncore {
	u, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

// Config returns the configuration the uncore was built with.
func (u *Uncore) Config() Config { return u.cfg }

// ResetStats zeroes the event counters without touching cache or MSHR
// state, so steady-state rates can be measured after a warm-up period.
func (u *Uncore) ResetStats() {
	u.stats = Stats{}
	u.llc.ResetStats()
}

// Stats returns a snapshot of the uncore counters.
func (u *Uncore) Stats() Stats {
	s := u.stats
	s.LLC = u.llc.Stats()
	s.BusBusyCycles = u.bus.BusyCycles()
	s.DRAMRequests = u.dram.Requests()
	return s
}

// Translate maps a core-local virtual address to a physical address,
// allocating a fresh physical page on first touch.
func (u *Uncore) Translate(core int, vaddr uint64) uint64 {
	vpage := vaddr / PageSize
	// +1 in the cache tags distinguishes "page 0" from "empty".
	e := &u.xlat[core*xlatEntries+int(vpage&(xlatEntries-1))]
	if e.vpage == vpage+1 {
		return e.ppage*PageSize + vaddr%PageSize
	}
	return u.translateSlow(core, vpage, vaddr, e)
}

// translateSlow is the translation-cache miss path: consult the page
// table, allocating a fresh physical page on first touch, and refill the
// cache entry.
func (u *Uncore) translateSlow(core int, vpage, vaddr uint64, e *xlatEntry) uint64 {
	pt := u.pageTables[core]
	ppage, ok := pt[vpage]
	if !ok {
		ppage = u.nextPage
		u.nextPage++
		pt[vpage] = ppage
	}
	e.vpage, e.ppage = vpage+1, ppage
	return ppage*PageSize + vaddr%PageSize
}

// mshrLookup returns the completion time of an in-flight fill of line, if
// any.
func (u *Uncore) mshrLookup(line, now uint64) (uint64, bool) {
	if now >= u.mshrMax {
		return 0, false
	}
	for i, l := range u.mshrLine {
		if l == line {
			if done := u.mshrDone[i]; done > now {
				return done, true
			}
		}
	}
	return 0, false
}

// mshrInFlight counts occupied MSHRs and returns the earliest completion
// among them.
func (u *Uncore) mshrInFlight(now uint64) (count int, earliest uint64) {
	if now >= u.mshrMax {
		return 0, 0
	}
	first := true
	for _, done := range u.mshrDone {
		if done > now {
			count++
			if first || done < earliest {
				earliest = done
				first = false
			}
		}
	}
	return count, earliest
}

// mshrProbe is mshrLookup and mshrInFlight's count in a single pass over
// the file: it returns the completion time of an in-flight fill of line
// (at most one fill of a line is ever in flight) and the number of
// occupied MSHRs.
func (u *Uncore) mshrProbe(line, now uint64) (done uint64, ok bool, count int) {
	if now >= u.mshrMax {
		return 0, false, 0
	}
	for i, d := range u.mshrDone {
		if d > now {
			count++
			if u.mshrLine[i] == line {
				done, ok = d, true
			}
		}
	}
	return done, ok, count
}

// mshrInsert books a slot for a fill completing at done. A free (expired)
// slot must exist; callers ensure capacity beforehand.
func (u *Uncore) mshrInsert(line, done, now uint64) {
	if done > u.mshrMax {
		u.mshrMax = done
	}
	for i, d := range u.mshrDone {
		if d <= now {
			u.mshrLine[i], u.mshrDone[i] = line, done
			return
		}
	}
	// No free slot: replace the earliest-completing entry (only reachable
	// through pathological caller misuse; keeps the model robust).
	min := 0
	for i := 1; i < len(u.mshrDone); i++ {
		if u.mshrDone[i] < u.mshrDone[min] {
			min = i
		}
	}
	u.mshrLine[min], u.mshrDone[min] = line, done
}

// Access implements Memory.
func (u *Uncore) Access(core int, pc, vaddr uint64, write, prefetch bool, now uint64) uint64 {
	if core < 0 || core >= u.cfg.Cores {
		panic(fmt.Sprintf("uncore: core %d out of range", core))
	}
	// Translate's cache-hit path, by hand: the call sits on every
	// simulated memory access and the compiler won't inline it (the
	// page-table fallback drags it over the inlining budget).
	vpage := vaddr / PageSize
	var paddr uint64
	if e := &u.xlat[core*xlatEntries+int(vpage&(xlatEntries-1))]; e.vpage == vpage+1 {
		paddr = e.ppage*PageSize + vaddr%PageSize
	} else {
		paddr = u.translateSlow(core, vpage, vaddr, e)
	}
	line := cache.AlignLine(paddr)

	var done uint64
	if prefetch {
		done = u.prefetchAccess(line, now)
	} else {
		u.stats.Requests++
		done = u.demandAccess(line, write, now)
		// Train the LLC prefetchers on the demand stream. Proposals are
		// issued as speculative fills through the same path. The PC is
		// salted with the core id so per-core streams do not alias. The
		// proposals are staged through pfScratch so that issuing them
		// cannot alias the prefetcher's reused buffer; nothing downstream
		// of prefetchAccess observes the demand stream, so the scratch is
		// never reused re-entrantly.
		var props []uint64
		if u.prefSS != nil {
			props = u.prefSS.Observe(pc^uint64(core)<<56, paddr, done > now+u.cfg.LLCLatency)
		} else {
			props = u.pref.Observe(pc^uint64(core)<<56, paddr, done > now+u.cfg.LLCLatency)
		}
		u.pfScratch = u.pfScratch[:0]
		for _, a := range props {
			u.pfScratch = append(u.pfScratch, a)
		}
		for _, a := range u.pfScratch {
			u.prefetchAccess(cache.AlignLine(a), now)
		}
	}
	return done
}

// demandAccess performs a demand lookup and, on a miss, schedules the
// memory fill. It returns the request completion time.
func (u *Uncore) demandAccess(line uint64, write bool, now uint64) uint64 {
	hitTime := now + u.cfg.LLCLatency
	if u.llc.Access(line, write) {
		// The line's state is installed at schedule time, so a "hit" may
		// be on a still-in-flight fill (e.g. a late prefetch): the data
		// is only usable once the fill completes.
		if done, ok := u.mshrLookup(line, hitTime); ok {
			return done
		}
		return hitTime
	}
	u.stats.DemandMisses++
	// Merge into an in-flight fill of the same line.
	if done, ok := u.mshrLookup(line, now); ok {
		if done < hitTime {
			return hitTime
		}
		return done
	}
	return u.scheduleFill(line, write, false, hitTime)
}

// prefetchAccess issues a speculative fill if the line is neither resident
// nor in flight and an MSHR is free. Prefetches are dropped rather than
// stalled when resources are exhausted.
//
// A residency filter fronts the set scan: if the line was seen resident
// and the LLC's content generation has not moved, it is provably still
// resident (see Cache.Generation) and the access completes at the hit
// latency without touching the cache — the exact result the scan would
// produce. Trained streams re-propose the lines they just prefetched on
// almost every access (>90% of proposals are already-resident no-ops),
// which is what makes the filter pay.
func (u *Uncore) prefetchAccess(line uint64, now uint64) uint64 {
	h := int(line/cache.LineSize) & (len(u.propLine) - 1)
	gen := u.llc.Generation()
	if u.propGen[h] == gen && u.propLine[h] == line {
		return now + u.cfg.LLCLatency
	}
	if u.llc.Probe(line) {
		u.propLine[h], u.propGen[h] = line, gen
		return now + u.cfg.LLCLatency
	}
	return u.prefetchMiss(line, now)
}

// prefetchMiss is the non-resident tail of prefetchAccess.
func (u *Uncore) prefetchMiss(line, now uint64) uint64 {
	done, ok, count := u.mshrProbe(line, now)
	if ok {
		return done
	}
	// Prefetches only use spare MSHR capacity: they are dropped rather
	// than allowed to starve demand misses. The candidate/issued counts
	// calibrate the functional path's replay of this drop rate.
	u.pfCand++
	if count >= u.cfg.MSHRs/2 {
		return now // dropped
	}
	u.pfIssued++
	u.stats.PrefetchIssued++
	return u.scheduleFill(line, false, true, now+u.cfg.LLCLatency)
}

// scheduleFill books the bus and DRAM for a miss and installs the line at
// completion time. start is the earliest cycle the request may leave the
// LLC (post-lookup).
func (u *Uncore) scheduleFill(line uint64, write, prefetch bool, start uint64) uint64 {
	// MSHR capacity: a full file delays the request until an entry frees.
	if count, earliest := u.mshrInFlight(start); count >= u.cfg.MSHRs {
		if earliest > start {
			start = earliest
		}
	}
	_, cmdDone := u.bus.TransferCommand(start)
	dramDone := u.dram.Access(cmdDone)
	_, dataDone := u.bus.TransferLine(dramDone)
	u.mshrInsert(line, dataDone, start)

	ev := u.llc.Fill(line, write, prefetch)
	if ev.Valid && ev.Dirty {
		u.scheduleWriteback(dataDone)
	}
	return dataDone
}

// scheduleWriteback drains a dirty victim through the write buffer. A full
// buffer back-pressures by queueing behind its earliest drain.
func (u *Uncore) scheduleWriteback(now uint64) {
	u.stats.Writebacks++
	// Drop drained entries so the buffer tracks only in-flight drains.
	keep := u.writeBuf[:0]
	for _, done := range u.writeBuf {
		if done > now {
			keep = append(keep, done)
		}
	}
	u.writeBuf = keep
	start := now
	if len(u.writeBuf) >= u.cfg.WriteBufEnts {
		earliest := u.writeBuf[0]
		idx := 0
		for i, t := range u.writeBuf {
			if t < earliest {
				earliest, idx = t, i
			}
		}
		if earliest > start {
			start = earliest
		}
		u.writeBuf = append(u.writeBuf[:idx], u.writeBuf[idx+1:]...)
	}
	_, done := u.bus.TransferLine(start)
	u.writeBuf = append(u.writeBuf, done)
}

// FixedLatency is a Memory stub that services every request in a constant
// number of cycles. It is used to build BADCO models (two calibration runs
// at different latencies) and in unit tests.
type FixedLatency struct {
	Lat uint64
	N   uint64 // requests served
}

// Access implements Memory.
func (f *FixedLatency) Access(_ int, _, _ uint64, _, _ bool, now uint64) uint64 {
	f.N++
	return now + f.Lat
}
