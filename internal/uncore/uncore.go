// Package uncore models the shared part of the simulated CMP: the
// last-level cache with its replacement policy, MSHRs, write buffer and
// prefetchers, the front-side bus and the DRAM (Table II of the paper).
//
// Both the detailed core model (package cpu) and the approximate BADCO
// machines (package badco) drive the exact same uncore, as in the paper.
package uncore

import (
	"fmt"

	"mcbench/internal/cache"
	"mcbench/internal/mem"
)

// Memory is the interface cores use to talk to the memory hierarchy below
// their private L1 caches. All times are core cycles.
type Memory interface {
	// Access services a request from core for the line containing vaddr,
	// issued at time now. pc is the requesting instruction address (used
	// by prefetchers), write marks stores/RFOs and prefetch marks
	// speculative requests. It returns the completion time.
	Access(core int, pc, vaddr uint64, write, prefetch bool, now uint64) uint64
}

// PageSize is the virtual memory page size (4 kB, Table I).
const PageSize = 4096

// Config describes one uncore instance.
type Config struct {
	Cores          int
	LLCBytes       int
	LLCWays        int
	LLCLatency     uint64 // hit latency in core cycles
	MSHRs          int    // outstanding misses (16 in the paper)
	WriteBufEnts   int    // LLC write buffer entries (8 in the paper)
	DRAMLatency    uint64 // core cycles (200 in the paper)
	Bus            mem.BusConfig
	Policy         cache.PolicyName
	PolicySeed     int64
	PrefetchDegree int // degree of the LLC stride/stream prefetchers
}

// ConfigFor returns the Table II uncore for the given core count (1 core
// shares the 2-core sizing) and replacement policy.
//
// LLC capacities are scaled to 1/4 of the paper's (256 kB / 512 kB / 1 MB
// for 2 / 4 / 8 cores) to match the 10⁻³ trace-length scaling: a 100 k-µop
// trace touches ~10⁻¹ of the data footprint a 100 M-instruction run
// would, so a proportionally smaller LLC preserves the paper's capacity
// pressure — which is what differentiates replacement policies.
// Latencies, associativity, MSHRs and the write buffer keep the paper's
// values.
func ConfigFor(cores int, policy cache.PolicyName) Config {
	cfg := Config{
		Cores:          cores,
		LLCWays:        16,
		MSHRs:          16,
		WriteBufEnts:   8,
		DRAMLatency:    200,
		Bus:            mem.DefaultBusConfig(),
		Policy:         policy,
		PolicySeed:     12345,
		PrefetchDegree: 2,
	}
	switch {
	case cores <= 2:
		cfg.LLCBytes = 256 << 10
		cfg.LLCLatency = 5
	case cores <= 4:
		cfg.LLCBytes = 512 << 10
		cfg.LLCLatency = 6
	default:
		cfg.LLCBytes = 1 << 20
		cfg.LLCLatency = 7
	}
	return cfg
}

// Stats aggregates uncore activity.
type Stats struct {
	Requests       uint64 // demand requests received
	DemandMisses   uint64 // demand requests that missed the LLC
	PrefetchIssued uint64 // prefetch requests sent to memory
	Writebacks     uint64 // dirty lines written back
	LLC            cache.Stats
	BusBusyCycles  uint64
	DRAMRequests   uint64
}

// Uncore is the shared LLC + bus + DRAM assembly.
type Uncore struct {
	cfg   Config
	llc   *cache.Cache
	bus   *mem.Bus
	dram  *mem.DRAM
	pref  cache.Prefetcher
	stats Stats

	// mshrs is the MSHR file: a fixed array of in-flight fills. A slot
	// whose completion time is at or before "now" is free. The fixed
	// array keeps the hot path free of map traffic.
	mshrs []mshrEntry

	// writeBuf holds the drain-completion times of in-flight writebacks.
	writeBuf []uint64

	// pageTables give each core its own virtual address space; pages are
	// allocated from a global bump allocator on first touch, so identical
	// benchmarks on different cores use distinct physical lines.
	pageTables []map[uint64]uint64
	nextPage   uint64

	// lastVPage/lastPPage cache each core's most recent translation
	// (page-level locality makes this hit most of the time).
	lastVPage []uint64
	lastPPage []uint64
}

// mshrEntry is one in-flight fill.
type mshrEntry struct {
	line uint64
	done uint64
}

// New builds an uncore from cfg.
func New(cfg Config) (*Uncore, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("uncore: %d cores", cfg.Cores)
	}
	if cfg.MSHRs <= 0 || cfg.WriteBufEnts <= 0 {
		return nil, fmt.Errorf("uncore: MSHRs/write buffer must be positive")
	}
	pol, err := cache.NewPolicy(cfg.Policy, cfg.PolicySeed)
	if err != nil {
		return nil, err
	}
	llc, err := cache.New("LLC", cfg.LLCBytes, cfg.LLCWays, pol)
	if err != nil {
		return nil, err
	}
	bus, err := mem.NewBus(cfg.Bus)
	if err != nil {
		return nil, err
	}
	tables := make([]map[uint64]uint64, cfg.Cores)
	for i := range tables {
		tables[i] = make(map[uint64]uint64)
	}
	return &Uncore{
		cfg:        cfg,
		llc:        llc,
		bus:        bus,
		dram:       mem.NewDRAM(cfg.DRAMLatency),
		pref:       cache.Combine(cache.NewIPStride(cfg.PrefetchDegree), cache.NewStream(cfg.PrefetchDegree)),
		mshrs:      make([]mshrEntry, cfg.MSHRs),
		writeBuf:   make([]uint64, 0, cfg.WriteBufEnts),
		pageTables: tables,
		nextPage:   1, // keep physical page 0 unused
		lastVPage:  make([]uint64, cfg.Cores),
		lastPPage:  make([]uint64, cfg.Cores),
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Uncore {
	u, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

// Config returns the configuration the uncore was built with.
func (u *Uncore) Config() Config { return u.cfg }

// ResetStats zeroes the event counters without touching cache or MSHR
// state, so steady-state rates can be measured after a warm-up period.
func (u *Uncore) ResetStats() {
	u.stats = Stats{}
	u.llc.ResetStats()
}

// Stats returns a snapshot of the uncore counters.
func (u *Uncore) Stats() Stats {
	s := u.stats
	s.LLC = u.llc.Stats()
	s.BusBusyCycles = u.bus.BusyCycles()
	s.DRAMRequests = u.dram.Requests()
	return s
}

// Translate maps a core-local virtual address to a physical address,
// allocating a fresh physical page on first touch.
func (u *Uncore) Translate(core int, vaddr uint64) uint64 {
	vpage := vaddr / PageSize
	// +1 in the cache tags distinguishes "page 0" from "empty".
	if u.lastVPage[core] == vpage+1 {
		return u.lastPPage[core]*PageSize + vaddr%PageSize
	}
	pt := u.pageTables[core]
	ppage, ok := pt[vpage]
	if !ok {
		ppage = u.nextPage
		u.nextPage++
		pt[vpage] = ppage
	}
	u.lastVPage[core] = vpage + 1
	u.lastPPage[core] = ppage
	return ppage*PageSize + vaddr%PageSize
}

// mshrLookup returns the completion time of an in-flight fill of line, if
// any.
func (u *Uncore) mshrLookup(line, now uint64) (uint64, bool) {
	for i := range u.mshrs {
		e := &u.mshrs[i]
		if e.line == line && e.done > now {
			return e.done, true
		}
	}
	return 0, false
}

// mshrInFlight counts occupied MSHRs and returns the earliest completion
// among them.
func (u *Uncore) mshrInFlight(now uint64) (count int, earliest uint64) {
	first := true
	for i := range u.mshrs {
		if done := u.mshrs[i].done; done > now {
			count++
			if first || done < earliest {
				earliest = done
				first = false
			}
		}
	}
	return count, earliest
}

// mshrInsert books a slot for a fill completing at done. A free (expired)
// slot must exist; callers ensure capacity beforehand.
func (u *Uncore) mshrInsert(line, done, now uint64) {
	for i := range u.mshrs {
		if u.mshrs[i].done <= now {
			u.mshrs[i] = mshrEntry{line: line, done: done}
			return
		}
	}
	// No free slot: replace the earliest-completing entry (only reachable
	// through pathological caller misuse; keeps the model robust).
	min := 0
	for i := 1; i < len(u.mshrs); i++ {
		if u.mshrs[i].done < u.mshrs[min].done {
			min = i
		}
	}
	u.mshrs[min] = mshrEntry{line: line, done: done}
}

// Access implements Memory.
func (u *Uncore) Access(core int, pc, vaddr uint64, write, prefetch bool, now uint64) uint64 {
	if core < 0 || core >= u.cfg.Cores {
		panic(fmt.Sprintf("uncore: core %d out of range", core))
	}
	paddr := u.Translate(core, vaddr)
	line := cache.AlignLine(paddr)

	var done uint64
	if prefetch {
		done = u.prefetchAccess(line, now)
	} else {
		u.stats.Requests++
		done = u.demandAccess(line, write, now)
		// Train the LLC prefetchers on the demand stream. Proposals are
		// issued as speculative fills through the same path. The PC is
		// salted with the core id so per-core streams do not alias.
		for _, a := range clonePrefetches(u.pref.Observe(pc^uint64(core)<<56, paddr, done > now+u.cfg.LLCLatency)) {
			u.prefetchAccess(cache.AlignLine(a), now)
		}
	}
	return done
}

// clonePrefetches copies the prefetcher's reused buffer so that issuing
// prefetches (which may observe again) cannot alias it.
func clonePrefetches(in []uint64) []uint64 {
	if len(in) == 0 {
		return nil
	}
	out := make([]uint64, len(in))
	copy(out, in)
	return out
}

// demandAccess performs a demand lookup and, on a miss, schedules the
// memory fill. It returns the request completion time.
func (u *Uncore) demandAccess(line uint64, write bool, now uint64) uint64 {
	hitTime := now + u.cfg.LLCLatency
	if u.llc.Access(line, write) {
		// The line's state is installed at schedule time, so a "hit" may
		// be on a still-in-flight fill (e.g. a late prefetch): the data
		// is only usable once the fill completes.
		if done, ok := u.mshrLookup(line, hitTime); ok {
			return done
		}
		return hitTime
	}
	u.stats.DemandMisses++
	// Merge into an in-flight fill of the same line.
	if done, ok := u.mshrLookup(line, now); ok {
		if done < hitTime {
			return hitTime
		}
		return done
	}
	return u.scheduleFill(line, write, false, hitTime)
}

// prefetchAccess issues a speculative fill if the line is neither resident
// nor in flight and an MSHR is free. Prefetches are dropped rather than
// stalled when resources are exhausted.
func (u *Uncore) prefetchAccess(line uint64, now uint64) uint64 {
	if u.llc.Probe(line) {
		return now + u.cfg.LLCLatency
	}
	if done, ok := u.mshrLookup(line, now); ok {
		return done
	}
	// Prefetches only use spare MSHR capacity: they are dropped rather
	// than allowed to starve demand misses.
	if count, _ := u.mshrInFlight(now); count >= u.cfg.MSHRs/2 {
		return now // dropped
	}
	u.stats.PrefetchIssued++
	return u.scheduleFill(line, false, true, now+u.cfg.LLCLatency)
}

// scheduleFill books the bus and DRAM for a miss and installs the line at
// completion time. start is the earliest cycle the request may leave the
// LLC (post-lookup).
func (u *Uncore) scheduleFill(line uint64, write, prefetch bool, start uint64) uint64 {
	// MSHR capacity: a full file delays the request until an entry frees.
	if count, earliest := u.mshrInFlight(start); count >= u.cfg.MSHRs {
		if earliest > start {
			start = earliest
		}
	}
	_, cmdDone := u.bus.TransferCommand(start)
	dramDone := u.dram.Access(cmdDone)
	_, dataDone := u.bus.TransferLine(dramDone)
	u.mshrInsert(line, dataDone, start)

	ev := u.llc.Fill(line, write, prefetch)
	if ev.Valid && ev.Dirty {
		u.scheduleWriteback(dataDone)
	}
	return dataDone
}

// scheduleWriteback drains a dirty victim through the write buffer. A full
// buffer back-pressures by queueing behind its earliest drain.
func (u *Uncore) scheduleWriteback(now uint64) {
	u.stats.Writebacks++
	// Drop drained entries so the buffer tracks only in-flight drains.
	keep := u.writeBuf[:0]
	for _, done := range u.writeBuf {
		if done > now {
			keep = append(keep, done)
		}
	}
	u.writeBuf = keep
	start := now
	if len(u.writeBuf) >= u.cfg.WriteBufEnts {
		earliest := u.writeBuf[0]
		idx := 0
		for i, t := range u.writeBuf {
			if t < earliest {
				earliest, idx = t, i
			}
		}
		if earliest > start {
			start = earliest
		}
		u.writeBuf = append(u.writeBuf[:idx], u.writeBuf[idx+1:]...)
	}
	_, done := u.bus.TransferLine(start)
	u.writeBuf = append(u.writeBuf, done)
}

// FixedLatency is a Memory stub that services every request in a constant
// number of cycles. It is used to build BADCO models (two calibration runs
// at different latencies) and in unit tests.
type FixedLatency struct {
	Lat uint64
	N   uint64 // requests served
}

// Access implements Memory.
func (f *FixedLatency) Access(_ int, _, _ uint64, _, _ bool, now uint64) uint64 {
	f.N++
	return now + f.Lat
}
