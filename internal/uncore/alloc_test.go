package uncore

import (
	"testing"

	"mcbench/internal/cache"
)

// TestAccessAllocationFree pins the uncore's demand path at zero
// steady-state allocations: the MSHR file and translation cache are
// fixed arrays, prefetch proposals stage through a reusable scratch, and
// page-table inserts only happen on first touch of a page.
func TestAccessAllocationFree(t *testing.T) {
	u := MustNew(ConfigFor(2, cache.LRU))
	// A mix of streaming and strided accesses over a bounded footprint,
	// from two cores. One warm-up pass touches every page (map inserts)
	// and trains the prefetchers; the measured pass replays the same
	// addresses, so every translation is a pure lookup.
	var now uint64
	pass := func() {
		for i := 0; i < 2000; i++ {
			core := i & 1
			vaddr := uint64(i%512) * 64
			if i%3 == 0 {
				vaddr = 0x100000 + uint64(i%64)*4096
			}
			now++
			u.Access(core, 0x400000+uint64(i%32)*16, vaddr, i%7 == 0, false, now)
		}
	}
	pass() // warm up pages, caches, prefetchers
	if avg := testing.AllocsPerRun(10, pass); avg != 0 {
		t.Errorf("steady-state Access allocates %.2f times per pass, want 0", avg)
	}
}
