package uncore

import (
	"fmt"

	"mcbench/internal/cache"
)

// AccessFunctional is the functional-warming form of Access: it updates
// every piece of *state* — address translation, LLC contents and
// replacement metadata, prefetcher training and speculative fills,
// event counters — but books no timing resource (bus, DRAM, MSHRs,
// write buffer) and returns no completion time. Sampled simulation
// fast-forwards trace gaps through it so the shared hierarchy stays
// warm without pushing the timed resources' bookings into the future,
// which would poison the next measured window: the bus books free
// times monotonically, so timed accesses at a frozen clock would queue
// the whole gap's traffic in front of the measurement.
func (u *Uncore) AccessFunctional(core int, pc, vaddr uint64, write, prefetch bool) {
	if core < 0 || core >= u.cfg.Cores {
		panic(fmt.Sprintf("uncore: core %d out of range", core))
	}
	paddr := u.Translate(core, vaddr)
	line := cache.AlignLine(paddr)
	if prefetch {
		u.prefetchFunctional(line)
		return
	}
	u.stats.Requests++
	hit := u.llc.Access(line, write)
	if !hit {
		u.stats.DemandMisses++
		u.fillFunctional(line, write, false)
	}
	// Train the LLC prefetchers on the demand stream, exactly as the
	// timed path does (PC salted with the core id; proposals staged
	// through the reusable scratch).
	var props []uint64
	if u.prefSS != nil {
		props = u.prefSS.Observe(pc^uint64(core)<<56, paddr, !hit)
	} else {
		props = u.pref.Observe(pc^uint64(core)<<56, paddr, !hit)
	}
	u.pfScratch = u.pfScratch[:0]
	u.pfScratch = append(u.pfScratch, props...)
	for _, a := range u.pfScratch {
		u.prefetchFunctional(cache.AlignLine(a))
	}
}

// prefetchFunctional installs a speculative fill if the line is not
// resident, replaying the timed path's MSHR-pressure drop rate: the
// timed prefetchMiss counts the proposals reaching its pressure check
// and those that issue, and the functional path issues at that observed
// ratio through a deterministic accumulator (see the cpu package's
// ffPrefetchObserve for the full reasoning). With no drop model at all,
// functional warming leaves the LLC warmer than any timed execution,
// and measured windows overestimate IPC by tens of percent.
func (u *Uncore) prefetchFunctional(line uint64) {
	if u.llc.Probe(line) {
		return
	}
	rate := 1.0
	if u.pfCand > 0 {
		rate = float64(u.pfIssued) / float64(u.pfCand)
	}
	u.ffPfAcc += rate
	if u.ffPfAcc < 1 {
		return
	}
	u.ffPfAcc--
	u.stats.PrefetchIssued++
	u.fillFunctional(line, false, true)
}

// fillFunctional installs a line and counts (but does not schedule) the
// dirty-victim writeback.
func (u *Uncore) fillFunctional(line uint64, write, prefetch bool) {
	ev := u.llc.Fill(line, write, prefetch)
	if ev.Valid && ev.Dirty {
		u.stats.Writebacks++
	}
}
