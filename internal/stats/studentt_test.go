package stats

import (
	"math"
	"testing"
)

// TestNormalInvRoundTrip checks NormalInv against NormalCDF across the
// domain, including both rational-approximation tail branches.
func TestNormalInvRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-6, 0.001, 0.02, 0.025, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999, 1 - 1e-6} {
		x := NormalInv(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-8 {
			t.Errorf("NormalCDF(NormalInv(%g)) = %g", p, got)
		}
	}
	if z := NormalInv(0.975); math.Abs(z-1.959964) > 1e-5 {
		t.Errorf("NormalInv(0.975) = %g, want 1.959964", z)
	}
}

// TestTQuantileTable pins the 95% two-sided critical values against the
// standard t-table.
func TestTQuantileTable(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706},
		{2, 4.303},
		{4, 2.776},
		{10, 2.228},
		{30, 2.042},
		{120, 1.980},
	}
	for _, c := range cases {
		got := TQuantile(0.95, c.df)
		if math.Abs(got-c.want)/c.want > 1e-3 {
			t.Errorf("TQuantile(0.95, %d) = %g, want %g", c.df, got, c.want)
		}
	}
	// 99% level, df=10: 3.169.
	if got := TQuantile(0.99, 10); math.Abs(got-3.169)/3.169 > 1e-3 {
		t.Errorf("TQuantile(0.99, 10) = %g, want 3.169", got)
	}
	// Large df converges on the normal quantile.
	if got := TQuantile(0.95, 100000); math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("TQuantile(0.95, 1e5) = %g, want ≈1.960", got)
	}
}

// TestMeanCI checks the CI helper on a worked example and the
// single-sample degenerate case.
func TestMeanCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	mean, half := MeanCI(xs, 0.95)
	if mean != 3 {
		t.Fatalf("mean = %g, want 3", mean)
	}
	// s = sqrt(2.5), t(0.95, 4) = 2.776 → half = 2.776*sqrt(2.5/5) ≈ 1.963.
	want := 2.776 * math.Sqrt(2.5/5)
	if math.Abs(half-want)/want > 1e-3 {
		t.Errorf("half = %g, want %g", half, want)
	}
	if _, h := MeanCI([]float64{7}, 0.95); h != 0 {
		t.Errorf("single-sample half-width = %g, want 0", h)
	}
}
