package stats

import (
	"math/rand"
	"testing"
)

func TestKSNormalOnNormalData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = 3 + 2*rng.NormFloat64()
	}
	if d := KSNormal(xs); d > 0.03 {
		t.Errorf("KS = %.4f on genuinely normal data; want small", d)
	}
}

func TestKSNormalOnSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() // strongly right-skewed
	}
	if d := KSNormal(xs); d < 0.05 {
		t.Errorf("KS = %.4f on exponential data; want clearly nonzero", d)
	}
}

// The CLT in action: means of W-sized samples of a skewed distribution
// become more normal as W grows — the premise of the paper's equation (5).
func TestKSCLTConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([]float64, 4000)
	for i := range base {
		base[i] = rng.ExpFloat64()
	}
	ksAt := func(w int) float64 {
		means := make([]float64, 1500)
		for i := range means {
			sum := 0.0
			for j := 0; j < w; j++ {
				sum += base[rng.Intn(len(base))]
			}
			means[i] = sum / float64(w)
		}
		return KSNormal(means)
	}
	k1, k8, k64 := ksAt(1), ksAt(8), ksAt(64)
	if !(k64 < k8 && k8 < k1) {
		t.Errorf("KS not decreasing with sample size: W=1:%.3f W=8:%.3f W=64:%.3f", k1, k8, k64)
	}
}

func TestKSNormalDegenerate(t *testing.T) {
	if d := KSNormal([]float64{5, 5, 5}); d != 1 {
		t.Errorf("point mass KS = %g, want 1", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty input did not panic")
		}
	}()
	KSNormal(nil)
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, 500, 0.95, rng.Intn)
	if lo >= hi {
		t.Fatalf("degenerate interval [%g, %g]", lo, hi)
	}
	m := Mean(xs)
	if m < lo || m > hi {
		t.Errorf("sample mean %g outside its own bootstrap interval [%g, %g]", m, lo, hi)
	}
	// The interval must be roughly ±2·sigma/sqrt(n) wide.
	if width := hi - lo; width > 0.5 || width < 0.05 {
		t.Errorf("interval width %g implausible for n=400, sigma=1", width)
	}
}

func TestBootstrapCIBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { BootstrapCI(nil, 10, 0.9, func(int) int { return 0 }) },
		func() { BootstrapCI([]float64{1}, 0, 0.9, func(int) int { return 0 }) },
		func() { BootstrapCI([]float64{1}, 10, 1.5, func(int) int { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad parameters did not panic")
				}
			}()
			f()
		}()
	}
}
