package stats

import (
	"math"
	"sort"
)

// KSNormal returns the Kolmogorov–Smirnov statistic of xs against the
// normal distribution with the sample's own mean and standard deviation:
// the maximum absolute difference between the empirical CDF and the
// fitted normal CDF. It quantifies how close to normal a distribution is
// (0 = identical), which is how the reproduction checks the Central Limit
// Theorem premise behind the paper's equation (5).
func KSNormal(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	mu := Mean(xs)
	sigma := StdDev(xs)
	if sigma == 0 {
		return 1 // a point mass is maximally non-normal
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	maxD := 0.0
	for i, x := range sorted {
		f := NormalCDF((x - mu) / sigma)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if d := math.Abs(f - lo); d > maxD {
			maxD = d
		}
		if d := math.Abs(f - hi); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given level (e.g. 0.95), using b resamples drawn with
// the provided next function (an injected uniform source in [0, n) keeps
// the package free of math/rand while staying deterministic for callers).
func BootstrapCI(xs []float64, b int, level float64, next func(n int) int) (lo, hi float64) {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	if b < 1 || level <= 0 || level >= 1 {
		panic("stats: bad bootstrap parameters")
	}
	means := make([]float64, b)
	for i := range means {
		sum := 0.0
		for range xs {
			sum += xs[next(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}
