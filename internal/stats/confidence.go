package stats

import "math"

// Confidence implements equation (5) of the paper: the degree of confidence
// that microarchitecture Y outperforms X when throughput differences d(w)
// have coefficient of variation cv and W workloads are drawn at random:
//
//	Pr(D >= 0) = 1/2 * (1 + erf((1/cv) * sqrt(W/2)))
//
// The sign of cv carries the direction: a negative cv (negative mean
// difference) drives the confidence toward zero, meaning Y is very likely
// NOT better than X.
func Confidence(cv float64, w int) float64 {
	if w <= 0 {
		return 0.5
	}
	if cv == 0 {
		// Zero variance with nonzero mean: the conclusion is certain.
		return 1
	}
	if math.IsInf(cv, 0) {
		// Zero mean: coin flip regardless of sample size.
		return 0.5
	}
	return 0.5 * (1 + math.Erf((1/cv)*math.Sqrt(float64(w)/2)))
}

// ConfidenceFromSamples estimates cv from per-workload differences ds and
// applies Confidence for a sample of size w.
func ConfidenceFromSamples(ds []float64, w int) float64 {
	return Confidence(CoefVar(ds), w)
}

// RequiredSampleSize implements equation (8): W = 8*cv^2, the random-sample
// size at which |(1/cv)*sqrt(W/2)| = 2, i.e. the confidence is within
// erf(2) ≈ 0.9953 of certain. The result is rounded up and is at least 1.
func RequiredSampleSize(cv float64) int {
	if math.IsInf(cv, 0) || math.IsNaN(cv) {
		return math.MaxInt32
	}
	w := 8 * cv * cv
	n := int(math.Ceil(w))
	if n < 1 {
		n = 1
	}
	return n
}

// ConfidenceCurve evaluates equation (5) over a range of the reduced
// variable x = (1/cv)*sqrt(W/2), reproducing Figure 1. It returns the
// curve sampled at n+1 evenly spaced points in [lo, hi].
func ConfidenceCurve(lo, hi float64, n int) (xs, ys []float64) {
	if n < 1 {
		panic("stats: ConfidenceCurve needs n >= 1")
	}
	xs = make([]float64, n+1)
	ys = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n)
		xs[i] = x
		ys[i] = 0.5 * (1 + math.Erf(x))
	}
	return xs, ys
}
