package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfidenceBasics(t *testing.T) {
	// W = 0 carries no information.
	if got := Confidence(1, 0); got != 0.5 {
		t.Errorf("Confidence(1,0) = %g, want 0.5", got)
	}
	// cv = +Inf (zero mean) is a coin flip.
	if got := Confidence(math.Inf(1), 100); got != 0.5 {
		t.Errorf("Confidence(inf,100) = %g, want 0.5", got)
	}
	// Zero variance, positive mean: certain.
	if got := Confidence(0, 1); got != 1 {
		t.Errorf("Confidence(0,1) = %g, want 1", got)
	}
	// Positive cv: confidence above 0.5 and increasing in W.
	prev := 0.5
	for _, w := range []int{1, 2, 4, 8, 16, 64, 256} {
		c := Confidence(1, w)
		if c <= prev {
			t.Errorf("Confidence(1,%d) = %g not increasing (prev %g)", w, c, prev)
		}
		prev = c
	}
	// Negative cv mirrors around 0.5.
	for _, w := range []int{1, 10, 100} {
		cp := Confidence(0.7, w)
		cn := Confidence(-0.7, w)
		if !almostEqual(cp+cn, 1, 1e-12) {
			t.Errorf("Confidence symmetry broken at W=%d: %g + %g != 1", w, cp, cn)
		}
	}
}

func TestConfidenceAtPaperOperatingPoint(t *testing.T) {
	// At W = 8*cv^2 the reduced variable is 2 and confidence = (1+erf(2))/2.
	cv := 1.3
	w := RequiredSampleSize(cv)
	want := 0.5 * (1 + math.Erf(2))
	got := Confidence(cv, w)
	// w is rounded up so got >= want.
	if got < want-1e-9 {
		t.Errorf("Confidence at required size = %g, want >= %g", got, want)
	}
	if got > 0.9999 {
		t.Errorf("Confidence at required size suspiciously close to 1: %g", got)
	}
}

func TestRequiredSampleSize(t *testing.T) {
	cases := []struct {
		cv   float64
		want int
	}{
		{1, 8},
		{2, 32},
		{0.5, 2},
		{10, 800},
	}
	for _, c := range cases {
		if got := RequiredSampleSize(c.cv); got != c.want {
			t.Errorf("RequiredSampleSize(%g) = %d, want %d", c.cv, got, c.want)
		}
	}
	if got := RequiredSampleSize(math.Inf(1)); got != math.MaxInt32 {
		t.Errorf("RequiredSampleSize(inf) = %d", got)
	}
	// Sign does not matter: W depends on cv^2.
	if RequiredSampleSize(-2) != RequiredSampleSize(2) {
		t.Error("RequiredSampleSize should be symmetric in sign")
	}
}

func TestConfidenceCurveShape(t *testing.T) {
	xs, ys := ConfidenceCurve(-2, 2, 80)
	if len(xs) != 81 || len(ys) != 81 {
		t.Fatalf("curve lengths %d,%d", len(xs), len(ys))
	}
	// Monotone nondecreasing, anchored at ~0 and ~1, 0.5 at x=0.
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatalf("curve not monotone at %d", i)
		}
	}
	if ys[0] > 0.01 || ys[len(ys)-1] < 0.99 {
		t.Errorf("curve endpoints %g, %g", ys[0], ys[len(ys)-1])
	}
	mid := ys[40]
	if !almostEqual(mid, 0.5, 1e-12) {
		t.Errorf("curve at 0 = %g, want 0.5", mid)
	}
}

// Monte-Carlo validation of equation (5): draw W normal observations with
// mean mu and sd sigma; the fraction of trials whose sample mean is >= 0
// should match Confidence(sigma/mu, W).
func TestConfidenceMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		mu, sigma float64
		w         int
	}{
		{0.5, 1, 4},
		{0.2, 1, 16},
		{-0.3, 1, 9},
		{1, 2, 8},
	} {
		const trials = 20000
		hits := 0
		for i := 0; i < trials; i++ {
			sum := 0.0
			for j := 0; j < tc.w; j++ {
				sum += tc.mu + tc.sigma*rng.NormFloat64()
			}
			if sum >= 0 {
				hits++
			}
		}
		emp := float64(hits) / trials
		model := Confidence(tc.sigma/tc.mu, tc.w)
		if math.Abs(emp-model) > 0.015 {
			t.Errorf("mu=%g sigma=%g W=%d: empirical %g vs model %g",
				tc.mu, tc.sigma, tc.w, emp, model)
		}
	}
}

func TestConfidenceFromSamples(t *testing.T) {
	ds := []float64{1, 1.5, 0.5, 1.2, 0.8}
	cv := CoefVar(ds)
	if got, want := ConfidenceFromSamples(ds, 10), Confidence(cv, 10); got != want {
		t.Errorf("ConfidenceFromSamples = %g, want %g", got, want)
	}
}
