package stats

import (
	"fmt"
	"math"
)

// NormalInv returns the p-quantile of the standard normal distribution
// (the inverse of NormalCDF), 0 < p < 1, using Acklam's rational
// approximation (relative error below 1.15e-9 over the full domain).
func NormalInv(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: NormalInv probability %g out of (0,1)", p))
	}
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}

// TQuantile returns the two-sided critical value of Student's t
// distribution with df degrees of freedom at the given confidence level:
// the t such that P(|T| <= t) = confidence. For example
// TQuantile(0.95, 10) ≈ 2.228. It uses Hill's Algorithm 396, exact for
// df 1 and 2 and accurate to a few 1e-5 relative elsewhere — far below
// the sampling noise any confidence interval built from it carries.
func TQuantile(confidence float64, df int) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: TQuantile degrees of freedom %d < 1", df))
	}
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("stats: TQuantile confidence %g out of (0,1)", confidence))
	}
	p := 1 - confidence // two-tail probability
	n := float64(df)
	if df == 1 {
		h := p * math.Pi / 2
		return math.Cos(h) / math.Sin(h)
	}
	if df == 2 {
		return math.Sqrt(2/(p*(2-p)) - 2)
	}
	a := 1 / (n - 0.5)
	b := 48 / (a * a)
	c := ((20700*a/b-98)*a-16)*a + 96.36
	d := ((94.5/(b+c)-3)/b + 1) * math.Sqrt(a*math.Pi/2) * n
	x := d * p
	y := math.Pow(x, 2/n)
	if y > 0.05+a {
		// Asymptotic inverse expansion about the normal quantile.
		x = NormalInv(p / 2) // lower-tail quantile, negative
		y = x * x
		if df < 5 {
			c += 0.3 * (n - 4.5) * (x + 0.6)
		}
		c = (((0.05*d*x-5)*x-7)*x-2)*x + b + c
		y = (((((0.4*y+6.3)*y+36)*y+94.5)/c-y-3)/b + 1) * x
		y = a * y * y
		if y > 0.002 {
			y = math.Exp(y) - 1
		} else {
			y = 0.5*y*y + y
		}
	} else {
		y = ((1/(((n+6)/(n*y)-0.089*d-0.822)*(n+2)*3)+0.5/(n+4))*y-1)*
			(n+1)/(n+2) + 1/y
	}
	return math.Sqrt(n * y)
}

// MeanCI returns the sample mean of xs and the half-width of its
// two-sided Student-t confidence interval at the given level: the true
// mean lies in [mean-half, mean+half] with the stated confidence under
// the usual i.i.d. normality approximation. A single observation has no
// variance estimate, so its half-width is zero. Panics on empty input.
func MeanCI(xs []float64, confidence float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	s := math.Sqrt(SampleVariance(xs))
	t := TQuantile(confidence, len(xs)-1)
	return mean, t * s / math.Sqrt(float64(len(xs)))
}
