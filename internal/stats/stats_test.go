package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
		{[]float64{2.5, 2.5, 2.5, 2.5}, 2.5},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestMeanErrEmpty(t *testing.T) {
	if _, err := MeanErr(nil); err != ErrEmpty {
		t.Fatalf("MeanErr(nil) error = %v, want ErrEmpty", err)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean(nil) did not panic")
		}
	}()
	Mean(nil)
}

func TestHarmonicMean(t *testing.T) {
	// H(1,2,4) = 3 / (1 + 1/2 + 1/4) = 12/7.
	if got, want := HarmonicMean([]float64{1, 2, 4}), 12.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("HarmonicMean = %g, want %g", got, want)
	}
}

func TestHarmonicMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive value")
		}
	}()
	HarmonicMean([]float64{1, 0, 2})
}

func TestGeometricMean(t *testing.T) {
	if got, want := GeometricMean([]float64{1, 4}), 2.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("GeometricMean = %g, want %g", got, want)
	}
	if got, want := GeometricMean([]float64{2, 2, 2}), 2.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("GeometricMean = %g, want %g", got, want)
	}
}

func TestWeightedMean(t *testing.T) {
	xs := []float64{1, 2, 3}
	ws := []float64{1, 0, 1}
	if got, want := WeightedMean(xs, ws), 2.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("WeightedMean = %g, want %g", got, want)
	}
	// Equal weights reduce to the arithmetic mean.
	eq := []float64{3, 3, 3}
	if got, want := WeightedMean(xs, eq), Mean(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("WeightedMean equal weights = %g, want %g", got, want)
	}
}

func TestWeightedHarmonicMean(t *testing.T) {
	xs := []float64{1, 2, 4}
	eq := []float64{1, 1, 1}
	if got, want := WeightedHarmonicMean(xs, eq), HarmonicMean(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("WeightedHarmonicMean equal weights = %g, want %g", got, want)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, want := Variance(xs), 4.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, want)
	}
	if got, want := StdDev(xs), 2.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %g, want %g", got, want)
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got, want := SampleVariance(xs), 1.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("SampleVariance = %g, want %g", got, want)
	}
}

func TestCoefVarSign(t *testing.T) {
	pos := []float64{1, 2, 3}
	neg := []float64{-1, -2, -3}
	if CoefVar(pos) < 0 {
		t.Error("CoefVar of positive-mean data should be positive")
	}
	if CoefVar(neg) > 0 {
		t.Error("CoefVar of negative-mean data should be negative")
	}
	if got := InvCoefVar(pos); got <= 0 {
		t.Errorf("InvCoefVar positive-mean = %g, want > 0", got)
	}
	if got := InvCoefVar(neg); got >= 0 {
		t.Errorf("InvCoefVar negative-mean = %g, want < 0", got)
	}
}

func TestInvCoefVarDegenerate(t *testing.T) {
	if got := InvCoefVar([]float64{5, 5, 5}); !math.IsInf(got, 1) {
		t.Errorf("InvCoefVar(constant positive) = %g, want +Inf", got)
	}
	if got := InvCoefVar([]float64{-5, -5}); !math.IsInf(got, -1) {
		t.Errorf("InvCoefVar(constant negative) = %g, want -Inf", got)
	}
	if got := InvCoefVar([]float64{0, 0}); got != 0 {
		t.Errorf("InvCoefVar(zeros) = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%g,%g), want (-1,7)", min, max)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Quantile 0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("Quantile 1 = %g", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %g", got)
	}
	if got := Quantile(xs, 0.25); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Quantile 0.25 = %g, want 2", got)
	}
	// Unsorted input must give the same answer.
	shuffled := []float64{4, 1, 5, 3, 2}
	if got := Median(shuffled); got != 3 {
		t.Errorf("Median(shuffled) = %g", got)
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("NormalCDF(0) = %g", got)
	}
	if got := NormalCDF(1.96); !almostEqual(got, 0.975, 1e-3) {
		t.Errorf("NormalCDF(1.96) = %g, want ~0.975", got)
	}
	if got := NormalCDF(-1.96); !almostEqual(got, 0.025, 1e-3) {
		t.Errorf("NormalCDF(-1.96) = %g, want ~0.025", got)
	}
}

func TestMeanAbsErrorAndMax(t *testing.T) {
	ref := []float64{1, 2, 4}
	approx := []float64{1.1, 1.8, 4}
	// errors: 0.1, 0.1, 0 -> mean 0.0666..., max 0.1
	if got := MeanAbsError(approx, ref); !almostEqual(got, 0.2/3, 1e-9) {
		t.Errorf("MeanAbsError = %g", got)
	}
	if got := MaxAbsError(approx, ref); !almostEqual(got, 0.1, 1e-9) {
		t.Errorf("MaxAbsError = %g", got)
	}
}

// Property: mean lies within [min, max], harmonic <= geometric <= arithmetic
// for positive data.
func TestMeanInequalitiesProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Map arbitrary floats into a positive, well-conditioned range.
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, 0.5+math.Abs(math.Mod(x, 100)))
		}
		if len(xs) == 0 {
			return true
		}
		h := HarmonicMean(xs)
		g := GeometricMean(xs)
		a := Mean(xs)
		min, max := MinMax(xs)
		const tol = 1e-9
		return h <= g+tol && g <= a+tol && a >= min-tol && a <= max+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		shift := rng.NormFloat64() * 10
		scale := 1 + rng.Float64()*3
		for i := range xs {
			xs[i] = rng.NormFloat64()
			shifted[i] = xs[i] + shift
			scaled[i] = xs[i] * scale
		}
		v := Variance(xs)
		if !almostEqual(Variance(shifted), v, 1e-9*(1+v)) {
			t.Fatalf("variance not translation invariant: %g vs %g", Variance(shifted), v)
		}
		if !almostEqual(Variance(scaled), v*scale*scale, 1e-9*(1+v*scale*scale)) {
			t.Fatalf("variance not scale quadratic")
		}
	}
}
