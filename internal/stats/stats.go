// Package stats provides the statistical primitives used throughout the
// reproduction: descriptive statistics (arithmetic, harmonic, geometric and
// weighted means, variance, coefficient of variation), the normal
// distribution, and the confidence model of Velásquez et al. (ISPASS 2013,
// Section III).
//
// All functions are deterministic; randomized helpers take an explicit
// *rand.Rand so that callers control seeding.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty data sets.
var ErrEmpty = errors.New("stats: empty data set")

// Mean returns the arithmetic mean of xs. It panics on an empty slice;
// use MeanErr when the input may be empty.
func Mean(xs []float64) float64 {
	m, err := MeanErr(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// MeanErr returns the arithmetic mean of xs, or ErrEmpty.
func MeanErr(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// HarmonicMean returns the harmonic mean of xs. All values must be
// strictly positive.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: harmonic mean requires positive values, got %g", x))
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// GeometricMean returns the geometric mean of xs. All values must be
// strictly positive.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geometric mean requires positive values, got %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// WeightedMean returns sum(w_i*x_i)/sum(w_i). Weights must be non-negative
// and not all zero.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	var sw, swx float64
	for i, x := range xs {
		if ws[i] < 0 {
			panic("stats: negative weight")
		}
		sw += ws[i]
		swx += ws[i] * x
	}
	if sw == 0 {
		panic("stats: all weights zero")
	}
	return swx / sw
}

// WeightedHarmonicMean returns sum(w_i)/sum(w_i/x_i). Values must be
// strictly positive and weights non-negative, not all zero.
func WeightedHarmonicMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedHarmonicMean length mismatch")
	}
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	var sw, swinv float64
	for i, x := range xs {
		if x <= 0 {
			panic("stats: harmonic mean requires positive values")
		}
		if ws[i] < 0 {
			panic("stats: negative weight")
		}
		sw += ws[i]
		swinv += ws[i] / x
	}
	if sw == 0 {
		panic("stats: all weights zero")
	}
	return sw / swinv
}

// Variance returns the population variance of xs (divides by n, not n-1).
// The paper's coefficient of variation is defined over the full workload
// population, so the population form is the natural default.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance of xs (divides by
// n-1). It panics if len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		panic("stats: SampleVariance requires at least two values")
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefVar returns the coefficient of variation cv = sigma/mu of xs, using
// the population standard deviation. The sign of the result follows the
// sign of the mean: the paper plots 1/cv, whose sign indicates which
// microarchitecture of a pair wins.
func CoefVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.Inf(1)
	}
	return StdDev(xs) / m
}

// InvCoefVar returns 1/cv = mu/sigma, the quantity plotted in Figures 4
// and 5 of the paper. A zero standard deviation with nonzero mean yields
// +/-Inf; a zero mean yields 0.
func InvCoefVar(xs []float64) float64 {
	m := Mean(xs)
	s := StdDev(xs)
	if s == 0 {
		if m == 0 {
			return 0
		}
		return math.Copysign(math.Inf(1), m)
	}
	return m / s
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// NormalCDF returns the cumulative distribution function of the standard
// normal distribution at x.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// MeanAbsError returns the mean of |a_i - b_i| / |b_i| expressed as a
// fraction (not percent). It is used for the CPI and speedup error
// comparisons of Figure 2.
func MeanAbsError(approx, ref []float64) float64 {
	if len(approx) != len(ref) {
		panic("stats: MeanAbsError length mismatch")
	}
	if len(approx) == 0 {
		panic(ErrEmpty)
	}
	sum := 0.0
	for i := range approx {
		sum += math.Abs(approx[i]-ref[i]) / math.Abs(ref[i])
	}
	return sum / float64(len(approx))
}

// MaxAbsError returns the maximum of |a_i - b_i| / |b_i| as a fraction.
func MaxAbsError(approx, ref []float64) float64 {
	if len(approx) != len(ref) {
		panic("stats: MaxAbsError length mismatch")
	}
	if len(approx) == 0 {
		panic(ErrEmpty)
	}
	max := 0.0
	for i := range approx {
		e := math.Abs(approx[i]-ref[i]) / math.Abs(ref[i])
		if e > max {
			max = e
		}
	}
	return max
}
