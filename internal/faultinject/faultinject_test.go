package faultinject

import (
	"testing"
	"time"
)

// TestDisabledProbesAreNoOps pins the production-path contract: with no
// plan armed every probe does nothing, so the hooks can stay compiled
// into the store and the serve path unconditionally.
func TestDisabledProbesAreNoOps(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled with no plan armed")
	}
	if err := Error("any.site"); err != nil {
		t.Errorf("disabled Error injected: %v", err)
	}
	Sleep("any.site") // must return immediately
	if n := Truncate("any.site", 100); n != 100 {
		t.Errorf("disabled Truncate tore the write: %d", n)
	}
}

// TestUnruledSiteNeverFires pins that an armed plan only affects the
// sites it has rules for.
func TestUnruledSiteNeverFires(t *testing.T) {
	p := NewPlan(1)
	p.Rule("ruled", Rule{ErrorRate: 1})
	Enable(p)
	defer Disable()
	for i := 0; i < 50; i++ {
		if err := Error("unruled"); err != nil {
			t.Fatalf("unruled site fired: %v", err)
		}
		if n := Truncate("unruled", 10); n != 10 {
			t.Fatalf("unruled site tore: %d", n)
		}
	}
	if got := p.Injected("unruled"); got != 0 {
		t.Errorf("unruled site counted %d injections", got)
	}
}

// TestRateExtremes pins the endpoints: rate 1 always fires, rate 0
// never does.
func TestRateExtremes(t *testing.T) {
	p := NewPlan(7)
	p.Rule("always", Rule{ErrorRate: 1, TruncRate: 1})
	p.Rule("never", Rule{ErrorRate: 0, TruncRate: 0})
	Enable(p)
	defer Disable()
	for i := 0; i < 100; i++ {
		if Error("always") == nil {
			t.Fatal("rate-1 Error did not fire")
		}
		if n := Truncate("always", 64); n >= 64 {
			t.Fatalf("rate-1 Truncate returned %d of 64", n)
		}
		if Error("never") != nil {
			t.Fatal("rate-0 Error fired")
		}
		if n := Truncate("never", 64); n != 64 {
			t.Fatalf("rate-0 Truncate tore: %d", n)
		}
	}
	if got := p.Injected("always"); got != 200 {
		t.Errorf("Injected(always) = %d, want 200", got)
	}
	if total := p.InjectedTotal(); total != 200 {
		t.Errorf("InjectedTotal = %d, want 200", total)
	}
}

// TestDeterminism pins the replay property: two plans with the same
// seed make identical decisions hit-for-hit at every site, and a
// different seed makes different ones.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) (errs []bool, truncs []int) {
		p := NewPlan(seed)
		p.Rule("e", Rule{ErrorRate: 0.5})
		p.Rule("t", Rule{TruncRate: 0.5})
		Enable(p)
		defer Disable()
		for i := 0; i < 200; i++ {
			errs = append(errs, Error("e") != nil)
			truncs = append(truncs, Truncate("t", 1000))
		}
		return errs, truncs
	}
	e1, t1 := run(42)
	e2, t2 := run(42)
	for i := range e1 {
		if e1[i] != e2[i] || t1[i] != t2[i] {
			t.Fatalf("same seed diverged at hit %d: %v/%v vs %v/%v", i, e1[i], t1[i], e2[i], t2[i])
		}
	}
	e3, _ := run(43)
	same := true
	for i := range e1 {
		if e1[i] != e3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical error sequences")
	}
	// A mid-rate rule must actually fire sometimes and skip sometimes.
	fired := 0
	for _, b := range e1 {
		if b {
			fired++
		}
	}
	if fired == 0 || fired == len(e1) {
		t.Errorf("rate-0.5 rule fired %d/%d times", fired, len(e1))
	}
}

// TestSleepFires pins that a latency fault actually stalls, bounded by
// the rule's Sleep.
func TestSleepFires(t *testing.T) {
	p := NewPlan(3)
	p.Rule("s", Rule{SleepRate: 1, Sleep: 5 * time.Millisecond})
	Enable(p)
	defer Disable()
	start := time.Now()
	for i := 0; i < 3; i++ {
		Sleep("s")
	}
	if p.Injected("s") != 3 {
		t.Fatalf("Injected(s) = %d, want 3", p.Injected("s"))
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("3 bounded sleeps took %v", elapsed)
	}
}
