// Package faultinject provides deterministic, seed-driven fault
// injection for robustness testing. Production code calls the cheap
// package-level probes (Error, Sleep, Truncate) at named sites; with no
// plan armed they are a single atomic load and do nothing, so the hooks
// stay compiled in — no build tags — at negligible cost. Tests arm a
// Plan with per-site rules; every decision derives from the plan's seed
// and the site's own hit counter, so a failing chaos run replays
// exactly under the same seed regardless of goroutine interleaving
// across *different* sites.
//
// The three fault kinds mirror how storage and serving actually fail:
//
//   - Error: the operation reports a failure without side effects
//     (EIO on write, a job rejected by a flaky dependency);
//   - Sleep: the operation stalls (a degraded disk, a GC pause) —
//     what per-job timeouts must absorb;
//   - Truncate: a write is torn partway through (power loss, a
//     full disk) — what checksums and quarantine must catch.
//
// Sites are dot-separated names ("results.save.write", "serve.job").
// The wired-in sites are listed next to the code that calls them.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Rule arms fault kinds at one site. Rates are per-hit probabilities in
// [0, 1]; a zero rate disarms that kind. Decisions are deterministic in
// (plan seed, site, hit index).
type Rule struct {
	// ErrorRate is the probability a hit returns an injected error.
	ErrorRate float64
	// SleepRate is the probability a hit sleeps; Sleep bounds how long
	// (the actual duration is derived deterministically in (0, Sleep]).
	SleepRate float64
	Sleep     time.Duration
	// TruncRate is the probability a write is torn: Truncate returns a
	// strictly shorter length, derived deterministically.
	TruncRate float64
}

// Plan is one armed fault campaign: a seed plus per-site rules and hit
// counters. A Plan is safe for concurrent use.
type Plan struct {
	seed int64

	mu       sync.Mutex
	rules    map[string]Rule
	hits     map[string]uint64
	injected map[string]int
}

// NewPlan creates an empty plan; arm sites with Rule before Enable.
func NewPlan(seed int64) *Plan {
	return &Plan{
		seed:     seed,
		rules:    map[string]Rule{},
		hits:     map[string]uint64{},
		injected: map[string]int{},
	}
}

// Rule arms (or replaces) the rule for one site.
func (p *Plan) Rule(site string, r Rule) {
	p.mu.Lock()
	p.rules[site] = r
	p.mu.Unlock()
}

// Injected reports how many faults of any kind fired at the site — the
// observability hook chaos tests assert campaign pressure with.
func (p *Plan) Injected(site string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected[site]
}

// InjectedTotal reports the fault count across every site.
func (p *Plan) InjectedTotal() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, v := range p.injected {
		n += v
	}
	return n
}

// active is the armed plan; nil means every probe is a no-op.
var active atomic.Pointer[Plan]

// Enable arms the plan process-wide. Tests that Enable must Disable
// (typically via t.Cleanup) before another test arms its own plan.
func Enable(p *Plan) { active.Store(p) }

// Disable disarms fault injection; probes return to no-ops.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is armed.
func Enabled() bool { return active.Load() != nil }

// decide advances the site's hit counter and returns a deterministic
// 64-bit draw for this hit, or ok=false when the site has no rule.
func (p *Plan) decide(site string) (r Rule, draw uint64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok = p.rules[site]
	if !ok {
		return Rule{}, 0, false
	}
	k := p.hits[site]
	p.hits[site] = k + 1
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", p.seed, site, k)
	return r, splitmix64(h.Sum64()), true
}

// record counts one fired fault at the site.
func (p *Plan) record(site string) {
	p.mu.Lock()
	p.injected[site]++
	p.mu.Unlock()
}

// splitmix64 finalizes a hash into a well-mixed 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a draw onto [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Error returns an injected error for the site, or nil. The returned
// error is tagged with the site name so logs attribute it.
func Error(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	r, draw, ok := p.decide(site)
	if !ok || r.ErrorRate <= 0 || unit(draw) >= r.ErrorRate {
		return nil
	}
	p.record(site)
	return fmt.Errorf("faultinject: injected error at %s", site)
}

// Sleep stalls the caller when a latency fault fires at the site.
func Sleep(site string) {
	p := active.Load()
	if p == nil {
		return
	}
	r, draw, ok := p.decide(site)
	if !ok || r.SleepRate <= 0 || r.Sleep <= 0 || unit(draw) >= r.SleepRate {
		return
	}
	p.record(site)
	// Derive the stall from a second mix of the draw: (0, r.Sleep].
	d := time.Duration(splitmix64(draw)%uint64(r.Sleep)) + 1
	time.Sleep(d)
}

// Truncate returns how many of n bytes a write at the site should
// actually persist: n when no torn-write fault fires, strictly fewer
// (possibly zero) when one does.
func Truncate(site string, n int) int {
	p := active.Load()
	if p == nil || n <= 0 {
		return n
	}
	r, draw, ok := p.decide(site)
	if !ok || r.TruncRate <= 0 || unit(draw) >= r.TruncRate {
		return n
	}
	p.record(site)
	return int(splitmix64(draw^0xdead) % uint64(n))
}
