package faultinject_test

// The chaos harness: a campaign driven through kill/restart cycles,
// random cache-file corruption and seeded I/O faults must converge to
// results bit-identical to an undisturbed run, with zero duplicate
// sweeps once the cache has converged. This is the acceptance test the
// robustness layer exists for: every recovery path — torn-write
// checksums, quarantine-and-recompute, panic-free drain, restart from
// cache — exercised together, deterministically under one seed.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"mcbench/internal/cache"
	"mcbench/internal/experiments"
	"mcbench/internal/faultinject"
	"mcbench/internal/serve"
)

// chaosSeed fixes every injection decision; CI replays this exact
// campaign (see the chaos-smoke job).
const chaosSeed = 20130421

// chaosPolicies are the five sweeps of the campaign.
var chaosPolicies = []cache.PolicyName{cache.LRU, cache.FIFO, cache.Random, cache.DIP, cache.DRRIP}

var chaosRegisterOnce sync.Once

// registerChaosExperiment adds the campaign: five 2-core BADCO policy
// sweeps rendered into one deterministic table.
func registerChaosExperiment() {
	chaosRegisterOnce.Do(func() {
		experiments.Register(experiments.Spec{
			Name: "chaostest", Synopsis: "five 2-core policy sweeps (chaos harness)", Group: experiments.GroupExtension,
			Requests: func(l *experiments.Lab, p experiments.Params) []experiments.Request {
				var reqs []experiments.Request
				for _, pol := range chaosPolicies {
					reqs = append(reqs, experiments.Request{Sim: experiments.SimBadco, Cores: 2, Policy: pol})
				}
				return reqs
			},
			Run: func(ctx context.Context, l *experiments.Lab, p experiments.Params) (*experiments.Table, error) {
				t := &experiments.Table{Title: "chaostest", Columns: []string{"policy", "rows", "sum"}}
				for _, pol := range chaosPolicies {
					tab, err := l.BadcoIPC(ctx, 2, pol)
					if err != nil {
						return nil, err
					}
					var sum float64
					for _, row := range tab {
						for _, v := range row {
							sum += v
						}
					}
					t.AddRow(string(pol), fmt.Sprint(len(tab)), fmt.Sprintf("%.9f", sum))
				}
				return t, nil
			},
		})
	})
}

// chaosServer builds a quick-config server over the cache directory.
func chaosServer(cacheDir string) *serve.Server {
	labCfg := experiments.QuickConfig()
	labCfg.TraceLen = 2000
	labCfg.CacheDir = cacheDir
	return serve.New(serve.Config{Lab: labCfg, Workers: 2, QueueDepth: 8})
}

// submitChaos posts the campaign job and returns its ID.
func submitChaos(t *testing.T, base string) string {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"kind":       "experiment",
		"experiment": map[string]any{"name": "chaostest", "cores": 2},
	})
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("submit decode: %v\n%s", err, data)
	}
	return st.ID
}

// eventsPage is one long-poll page of a job's event log.
type eventsPage struct {
	State  serve.State   `json:"state"`
	Events []serve.Event `json:"events"`
}

// pollEvents fetches one page of the job's events past the cursor.
func pollEvents(t *testing.T, base, id string, after int, wait string) eventsPage {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/events?after=%d&wait=%s", base, id, after, wait))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d %s", resp.StatusCode, data)
	}
	var page eventsPage
	if err := json.Unmarshal(data, &page); err != nil {
		t.Fatalf("events decode: %v\n%s", err, data)
	}
	return page
}

// resultText fetches a done job's rendered text.
func resultText(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, data)
	}
	var res serve.JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("result decode: %v\n%s", err, data)
	}
	return res.Text
}

// runToDone drives one undisturbed campaign on a fresh server over dir
// and returns the result text and the sweeps that run executed.
func runToDone(t *testing.T, dir string) (text string, swept int64) {
	t.Helper()
	s := chaosServer(dir)
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id := submitChaos(t, ts.URL)
	deadline := time.Now().Add(180 * time.Second)
	after := 0
	for {
		if time.Now().After(deadline) {
			t.Fatal("campaign did not finish")
		}
		page := pollEvents(t, ts.URL, id, after, "2s")
		for _, ev := range page.Events {
			after = ev.Seq
		}
		if page.State.Terminal() {
			if page.State != serve.StateDone {
				t.Fatalf("campaign settled %s", page.State)
			}
			break
		}
	}
	badco, detailed := s.Lab().SweepCounts()
	return resultText(t, ts.URL, id), badco + detailed
}

// cacheFiles maps key → file bytes for every live table in dir
// (quarantined files excluded: they are corruption casualties, not
// results).
func cacheFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// corruptOneCacheFile flips bytes in the middle of the (sorted) i-th
// live cache file, wrapping around — a deterministic stand-in for a
// random bit-flip.
func corruptOneCacheFile(t *testing.T, dir string, i int) {
	t.Helper()
	var names []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return // nothing persisted yet this round
	}
	sort.Strings(names)
	path := filepath.Join(dir, names[i%len(names)])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		return
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCampaignConverges is the harness. Baseline: one undisturbed
// campaign into dirA. Chaos: the same campaign into dirB, driven
// through rounds of (arm seeded faults, start server, submit, kill the
// server mid-job, corrupt a cache file) — then one final faults-off
// round. The final round must converge to results bit-identical to the
// baseline (result text and every cache file), and a fresh server over
// the converged cache must serve the campaign with zero sweeps.
func TestChaosCampaignConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness skipped in -short")
	}
	registerChaosExperiment()
	dirA := t.TempDir()
	dirB := t.TempDir()

	baselineText, baselineSweeps := runToDone(t, dirA)
	if baselineSweeps == 0 {
		t.Fatal("baseline executed no sweeps — the campaign is vacuous")
	}

	// Chaos rounds: seeded faults armed, server killed mid-job, cache
	// corrupted between rounds.
	for round := 0; round < 3; round++ {
		plan := faultinject.NewPlan(chaosSeed + int64(round))
		plan.Rule("results.save.write", faultinject.Rule{TruncRate: 0.4})
		plan.Rule("results.save", faultinject.Rule{ErrorRate: 0.2})
		plan.Rule("results.load", faultinject.Rule{ErrorRate: 0.3})
		plan.Rule("serve.job", faultinject.Rule{SleepRate: 1, Sleep: 2 * time.Millisecond})
		faultinject.Enable(plan)

		s := chaosServer(dirB)
		ts := httptest.NewServer(s.Handler())
		id := submitChaos(t, ts.URL)
		// Let the job make partial progress — at most a few products —
		// then kill the server out from under it.
		page := pollEvents(t, ts.URL, id, 0, "300ms")
		_ = page
		s.Drain() // cancels in-flight work; completed sweeps are on disk
		ts.Close()
		faultinject.Disable()

		corruptOneCacheFile(t, dirB, round)
	}

	// Final round, faults off: the campaign must converge.
	chaosText, _ := runToDone(t, dirB)
	if chaosText != baselineText {
		t.Fatalf("chaos result diverged from baseline:\n--- baseline ---\n%s\n--- chaos ---\n%s", baselineText, chaosText)
	}
	filesA := cacheFiles(t, dirA)
	filesB := cacheFiles(t, dirB)
	if len(filesA) == 0 {
		t.Fatal("baseline persisted no tables")
	}
	if len(filesA) != len(filesB) {
		t.Fatalf("cache diverged: %d baseline files vs %d chaos files", len(filesA), len(filesB))
	}
	for name, a := range filesA {
		b, ok := filesB[name]
		if !ok {
			t.Fatalf("chaos cache missing %s", name)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("cache file %s is not bit-identical after chaos", name)
		}
	}

	// Zero duplicate work: a fresh server over the converged cache
	// serves the whole campaign from disk.
	_, sweeps := runToDone(t, dirB)
	if sweeps != 0 {
		t.Fatalf("converged cache still cost %d sweeps, want 0", sweeps)
	}
}
