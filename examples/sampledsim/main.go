// Sampled simulation: estimate steady-state IPC on a long trace with
// SMARTS-style systematic sampling — detailed measurement windows,
// functional fast-forward between them — and compare the estimate, its
// confidence interval and its cost against the exact detailed run.
//
// Run with: go run ./examples/sampledsim
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"mcbench"
)

func main() {
	ctx := context.Background()

	// A single-benchmark workload on a 10×-length trace — the regime
	// sampling exists for. Singles are the estimator's reliable case:
	// heterogeneous mixes fast-forward in lockstep and can distort
	// contention phases (see the README's "Sampled simulation" notes).
	workload := []string{"mcf"}
	const traceLen = 10 * 20000

	// Exact detailed run: the referent, and the cost sampling avoids.
	t0 := time.Now()
	exact, err := mcbench.Simulate(ctx, workload,
		mcbench.WithTraceLen(traceLen))
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(t0)

	// Sampled run: per 10k-µop unit, 2k µops of detailed warmup then a
	// 2k-µop measured window; the other 6k µops only warm the caches and
	// predictors functionally. 20 windows feed the Student-t interval.
	t0 = time.Now()
	sampled, err := mcbench.Simulate(ctx, workload,
		mcbench.WithSampling(10000, 2000, 2000),
		mcbench.WithTraceLen(traceLen))
	if err != nil {
		log.Fatal(err)
	}
	sampledTime := time.Since(t0)

	fmt.Printf("exact   IPC %.4f                (%v)\n", exact.IPC[0], exactTime.Round(time.Millisecond))
	fmt.Printf("sampled IPC %.4f ± %.4f (cv %.3f, %d windows, %v)\n",
		sampled.IPC[0], sampled.CIHalf[0], sampled.CV[0], sampled.Windows,
		sampledTime.Round(time.Millisecond))

	// The estimate targets steady-state IPC; the exact run from reset
	// includes its cold-start transient, so the honest comparison notes
	// both the gap and the interval.
	gap := math.Abs(sampled.IPC[0]-exact.IPC[0]) / exact.IPC[0]
	fmt.Printf("gap vs exact-from-reset: %.2f%% (the exact run pays the cold-start transient the estimator skips)\n", 100*gap)
	if exactTime > 0 && sampledTime > 0 {
		fmt.Printf("speedup: %.1fx\n", float64(exactTime)/float64(sampledTime))
	}

	// The same options work on Sweep and on a served Lab; the bounded
	// functional-warming dial (WithSamplingWarm) trades more speed for
	// warmup bias — see the sampling-accuracy experiment for the
	// measured frontier: mcbench sampling-accuracy.
}
