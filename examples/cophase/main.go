// Cophase: run the co-phase matrix method (Van Biesbrouck et al., ISPASS
// 2006 — the rigorous multiprogram simulation method the paper's footnote
// 4 points to) on a 2-core workload through the public mcbench API and
// compare it against direct detailed simulation: accuracy, matrix size
// and detailed-simulation cost.
//
// Run with: go run ./examples/cophase
package main

import (
	"context"
	"fmt"
	"log"

	"mcbench"
)

func main() {
	ctx := context.Background()
	const traceLen = 20000
	workload := []string{"soplex", "gobmk"}

	// Reference: one direct detailed simulation of the whole workload.
	ref, err := mcbench.Simulate(ctx, workload,
		mcbench.WithTraceLen(traceLen),
		mcbench.WithQuota(traceLen))
	if err != nil {
		log.Fatal(err)
	}

	// Co-phase matrix: 10 phases per benchmark, short warm+measure
	// detailed samples per phase combination, analytical fast-forwarding
	// in between.
	traces := map[string]*mcbench.Trace{}
	for _, name := range workload {
		tr, err := mcbench.GenerateTrace(name, traceLen)
		if err != nil {
			log.Fatal(err)
		}
		traces[name] = tr
	}
	sim, err := mcbench.NewCophase(workload, traces, mcbench.CophaseConfig{
		Phases:    10,
		SampleOps: traceLen / 20,
		WarmOps:   traceLen / 5,
		Policy:    mcbench.LRU,
	})
	if err != nil {
		log.Fatal(err)
	}
	pred, err := sim.Run(traceLen)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s+%s under LRU, %d µops/thread\n\n", workload[0], workload[1], traceLen)
	fmt.Printf("%-10s %10s %10s %8s\n", "thread", "detailed", "co-phase", "err")
	for i, name := range workload {
		e := (pred.IPC[i] - ref.IPC[i]) / ref.IPC[i] * 100
		fmt.Printf("%-10s %10.4f %10.4f %+7.1f%%\n", name, ref.IPC[i], pred.IPC[i], e)
	}
	fmt.Printf("\nco-phase matrix: %d entries measured\n", pred.MatrixEntries)
	fmt.Printf("detailed µops spent: %d (one direct simulation: %d)\n",
		pred.SimulatedOps, traceLen*len(workload))
	fmt.Println("at this toy scale the matrix costs more than one direct run;")
	fmt.Println("the win appears when executions dwarf the per-entry samples:")

	// The matrix is bounded by the phase-combination space, so its cost
	// saturates while the direct cost grows linearly with execution
	// length — predict a 100x longer run from the mostly-filled matrix.
	longer, err := sim.Run(100 * traceLen)
	if err != nil {
		log.Fatal(err)
	}
	direct := 100 * traceLen * len(workload)
	fmt.Printf("\n100x longer run: %d matrix entries, %d total detailed µops vs %d direct (%.1fx cheaper)\n",
		longer.MatrixEntries, longer.SimulatedOps, direct,
		float64(direct)/float64(longer.SimulatedOps))
	fmt.Println("with the paper's 100M-instruction threads the ratio grows by another three orders of magnitude")
}
