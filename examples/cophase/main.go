// Cophase: run the co-phase matrix method (Van Biesbrouck et al., ISPASS
// 2006 — the rigorous multiprogram simulation method the paper's footnote
// 4 points to) on a 2-core workload and compare it against direct
// detailed simulation: accuracy, matrix size and detailed-simulation
// cost.
//
// Run with: go run ./examples/cophase
package main

import (
	"fmt"
	"log"

	"mcbench/internal/cache"
	"mcbench/internal/cophase"
	"mcbench/internal/multicore"
	"mcbench/internal/trace"
)

func main() {
	const traceLen = 20000
	traces := map[string]*trace.Trace{}
	for _, name := range []string{"soplex", "gobmk"} {
		p, ok := trace.ByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %s", name)
		}
		traces[name] = trace.MustGenerate(p, traceLen)
	}
	w := multicore.Workload{"soplex", "gobmk"}

	// Reference: one direct detailed simulation of the whole workload.
	ref, err := multicore.Detailed(w, traces, cache.LRU, traceLen)
	if err != nil {
		log.Fatal(err)
	}

	// Co-phase matrix: 10 phases per benchmark, short warm+measure
	// detailed samples per phase combination, analytical fast-forwarding
	// in between.
	sim, err := cophase.New([]string(w), traces, cophase.Config{
		Phases:    10,
		SampleOps: traceLen / 20,
		WarmOps:   traceLen / 5,
		Policy:    cache.LRU,
	})
	if err != nil {
		log.Fatal(err)
	}
	pred, err := sim.Run(traceLen)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s under LRU, %d µops/thread\n\n", w, traceLen)
	fmt.Printf("%-10s %10s %10s %8s\n", "thread", "detailed", "co-phase", "err")
	for i, name := range w {
		e := (pred.IPC[i] - ref.IPC[i]) / ref.IPC[i] * 100
		fmt.Printf("%-10s %10.4f %10.4f %+7.1f%%\n", name, ref.IPC[i], pred.IPC[i], e)
	}
	fmt.Printf("\nco-phase matrix: %d entries measured\n", pred.MatrixEntries)
	fmt.Printf("detailed µops spent: %d (one direct simulation: %d)\n",
		pred.SimulatedOps, traceLen*len(w))
	fmt.Println("at this toy scale the matrix costs more than one direct run;")
	fmt.Println("the win appears when executions dwarf the per-entry samples:")

	// The matrix is bounded by the phase-combination space, so its cost
	// saturates while the direct cost grows linearly with execution
	// length — predict a 100x longer run from the mostly-filled matrix.
	longer, err := sim.Run(100 * traceLen)
	if err != nil {
		log.Fatal(err)
	}
	direct := 100 * traceLen * len(w)
	fmt.Printf("\n100x longer run: %d matrix entries, %d total detailed µops vs %d direct (%.1fx cheaper)\n",
		longer.MatrixEntries, longer.SimulatedOps, direct,
		float64(direct)/float64(longer.SimulatedOps))
	fmt.Println("with the paper's 100M-instruction threads the ratio grows by another three orders of magnitude")
}
