// Clustering: derive benchmark classes and representative workloads by
// cluster analysis on microarchitecture-independent profiles — the two
// fully-automatic selection methods the paper surveys in Section II-B
// (Vandierendonck & Seznec [6]; Van Biesbrouck, Eeckhout & Calder [7])
// — through the public mcbench API.
//
// Run with: go run ./examples/clustering
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mcbench"
)

func main() {
	ctx := context.Background()

	// 1. Profile the 22-benchmark suite: instruction mix, footprints,
	// reuse-distance histograms — no microarchitecture parameters used.
	// The lab memoizes the profiles (QuickConfig: 20k-µop traces).
	lab := mcbench.NewLab(mcbench.QuickConfig())
	names := mcbench.Benchmarks()
	features, err := lab.BenchFeatures(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Cluster the benchmarks into behavioural classes (k chosen by
	// silhouette score) and print the classes.
	rng := rand.New(rand.NewSource(1))
	best, err := mcbench.BestK(rng, mcbench.NormalizeFeatures(features), 2, 6)
	if err != nil {
		log.Fatal(err)
	}
	assign := mcbench.SortedAssign(best)
	fmt.Printf("k-means chose %d benchmark classes (silhouette-selected):\n", best.K)
	for c := 0; c < best.K; c++ {
		fmt.Printf("  class %d:", c)
		for i, a := range assign {
			if a == c {
				fmt.Printf(" %s", names[i])
			}
		}
		fmt.Println()
	}

	// 3. Use the classes for benchmark stratification over the 2-core
	// workload population, and draw a 20-workload sample.
	pop := mcbench.EnumerateWorkloads(2)
	strata, classes, err := mcbench.NewClusterBenchStrata(rng, pop, features, best.K)
	if err != nil {
		log.Fatal(err)
	}
	_ = classes
	idx, weights := strata.Draw(rng, 20)
	fmt.Printf("\ncluster-stratified sample of 20 workloads (of %d):\n", pop.Size())
	for i, w := range idx[:5] {
		fmt.Printf("  %-24v weight %.4f\n", pop.Workloads[w].Names(names), weights[i])
	}
	fmt.Printf("  ... (%d more)\n", len(idx)-5)

	// 4. Van Biesbrouck-style representative workloads: cluster the
	// workload feature matrix and simulate only the medoids, weighted by
	// cluster size.
	wf, err := mcbench.WorkloadFeatures(pop, features)
	if err != nil {
		log.Fatal(err)
	}
	rep := mcbench.NewRepresentative(wf, 30)
	medoids, wts := rep.Draw(rng, 6)
	fmt.Printf("\n6 representative workloads stand in for all %d:\n", pop.Size())
	for i, m := range medoids {
		fmt.Printf("  %-24v covers %4.1f%% of the population\n",
			pop.Workloads[m].Names(names), wts[i]*100)
	}
	fmt.Println("\nsimulate just these medoids and weight their throughputs to estimate the population mean")
}
