// Quickstart: simulate one 2-core multiprogrammed workload with both
// simulators through the public mcbench API and compare their
// per-thread IPCs and a throughput metric.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mcbench"
)

func main() {
	ctx := context.Background()

	// The workload: a memory-bound thread (mcf) next to a compute-bound
	// one (povray), sharing the LLC. 20k µops per thread keeps this
	// example fast.
	workload := []string{"mcf", "povray"}
	const traceLen = 20000

	// 1. Detailed simulation under two replacement policies.
	fmt.Println("detailed simulator:")
	var ipcLRU []float64
	for _, pol := range []mcbench.Policy{mcbench.LRU, mcbench.DRRIP} {
		r, err := mcbench.Simulate(ctx, workload,
			mcbench.WithPolicy(pol),
			mcbench.WithTraceLen(traceLen))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s IPC: mcf %.3f, povray %.3f\n", pol, r.IPC[0], r.IPC[1])
		if pol == mcbench.LRU {
			ipcLRU = r.IPC
		}
	}

	// 2. The same with BADCO models (built from two calibration runs of
	// the detailed core each) — the fast approximate path.
	fmt.Println("BADCO (approximate) simulator:")
	for _, pol := range []mcbench.Policy{mcbench.LRU, mcbench.DRRIP} {
		r, err := mcbench.Simulate(ctx, workload,
			mcbench.WithPolicy(pol),
			mcbench.WithSimulator(mcbench.BADCO),
			mcbench.WithTraceLen(traceLen))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s IPC: mcf %.3f, povray %.3f\n", pol, r.IPC[0], r.IPC[1])
	}

	// 3. A throughput metric: IPC throughput of the LRU run.
	t := mcbench.IPCT.PerWorkload(ipcLRU, nil)
	fmt.Printf("IPC throughput t(w) under LRU: %.3f\n", t)
}
