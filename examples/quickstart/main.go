// Quickstart: simulate one 2-core multiprogrammed workload with both
// simulators and compare their per-thread IPCs and a throughput metric.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mcbench/internal/badco"
	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/multicore"
	"mcbench/internal/trace"
)

func main() {
	// 1. Generate the synthetic benchmark traces (the SPEC CPU2006
	// stand-ins). 20k µops keeps this example fast.
	const traceLen = 20000
	traces := map[string]*trace.Trace{}
	for _, name := range []string{"mcf", "povray"} {
		p, ok := trace.ByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %s", name)
		}
		traces[name] = trace.MustGenerate(p, traceLen)
	}

	// 2. The workload: a memory-bound thread (mcf) next to a compute-
	// bound one (povray), sharing the LLC.
	w := multicore.Workload{"mcf", "povray"}

	// 3. Detailed simulation under two replacement policies.
	fmt.Println("detailed simulator:")
	var ipcLRU []float64
	for _, pol := range []cache.PolicyName{cache.LRU, cache.DRRIP} {
		r, err := multicore.Detailed(w, traces, pol, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s IPC: mcf %.3f, povray %.3f\n", pol, r.IPC[0], r.IPC[1])
		if pol == cache.LRU {
			ipcLRU = r.IPC
		}
	}

	// 4. The same with BADCO models (built from two calibration runs of
	// the detailed core each) — the fast approximate path.
	models, err := multicore.BuildModels(traces, badco.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BADCO (approximate) simulator:")
	for _, pol := range []cache.PolicyName{cache.LRU, cache.DRRIP} {
		r, err := multicore.Approximate(w, models, pol, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s IPC: mcf %.3f, povray %.3f\n", pol, r.IPC[0], r.IPC[1])
	}

	// 5. A throughput metric: IPC throughput of the LRU run.
	t := metrics.IPCT.PerWorkload(ipcLRU, nil)
	fmt.Printf("IPC throughput t(w) under LRU: %.3f\n", t)
}
