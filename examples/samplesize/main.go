// Samplesize: explore the paper's analytical confidence model (Section
// III) through the public mcbench API. For a grid of coefficients of
// variation, print the confidence reached by different random-sample
// sizes and the W = 8*cv^2 rule — the numbers behind the "how many
// workloads do I need?" question.
//
// Run with: go run ./examples/samplesize
package main

import (
	"fmt"

	"mcbench"
)

func main() {
	fmt.Println("confidence that Y beats X under random workload sampling")
	fmt.Println("(rows: cv of the per-workload difference d(w); columns: sample size W)")
	fmt.Println()

	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	fmt.Printf("%8s", "cv")
	for _, w := range sizes {
		fmt.Printf("  W=%-5d", w)
	}
	fmt.Printf("  %s\n", "W=8cv^2")

	for _, cv := range []float64{0.5, 1, 2, 4, 8, 16} {
		fmt.Printf("%8.1f", cv)
		for _, w := range sizes {
			fmt.Printf("  %.4f ", mcbench.Confidence(cv, w))
		}
		fmt.Printf("  %d\n", mcbench.RequiredSampleSize(cv))
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  cv <= 2: a few tens of random workloads give near-certain conclusions")
	fmt.Println("  cv ~  8: hundreds are needed - the regime where many published studies undersample")
	fmt.Println("  cv >  10: the paper's rule declares the designs equivalent on average")
}
