// Example serveclient hosts the experiment service in-process and
// drives it with mcbench.Client: submit a registered experiment and an
// ad-hoc simulation, stream job progress, read the results back, then
// drain the server — the same flow an external client uses against a
// long-running `mcbench serve` deployment.
package main

import (
	"context"
	"fmt"
	"log"

	"mcbench"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// A quick, small campaign keeps the demo snappy.
	cfg := mcbench.QuickConfig()
	cfg.TraceLen = 4000

	// Serve drains and returns nil when ctx is cancelled; in a real
	// deployment ctx would come from the process's signal handler.
	ready := make(chan string, 1)
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- mcbench.Serve(ctx, cfg, mcbench.ServeOptions{
			Addr:    "127.0.0.1:0",
			Workers: 2,
			OnReady: func(addr string) { ready <- addr },
		})
	}()
	addr := <-ready

	client, err := mcbench.NewClient("http://" + addr)
	if err != nil {
		log.Fatal(err)
	}
	health, err := client.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server %s on %s, source %s\n", health.Build.Version, addr, health.Source)

	// A registered experiment, streamed: product events land as the
	// lab computes (or cache-loads) each table.
	st, err := client.SubmitExperiment(ctx, "config", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (deduped=%v)\n", st.ID, st.Deduped)
	if _, err := client.Events(ctx, st.ID, 0, func(ev mcbench.JobEvent) bool {
		fmt.Printf("  [%s] %s %s\n", st.ID, ev.Type, ev.Msg)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	res, err := client.Wait(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Text)

	// An ad-hoc simulation through the same job queue.
	sim, err := client.SubmitSimulate(ctx, []string{"mcf", "povray"},
		mcbench.WithSimulator(mcbench.BADCO))
	if err != nil {
		log.Fatal(err)
	}
	simRes, err := client.Wait(ctx, sim.ID)
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range simRes.Results[0].Workload {
		fmt.Printf("%-8s IPC %.4f\n", name, simRes.Results[0].IPC[i])
	}

	// Drain: cancel the lifetime context and wait for the clean exit.
	cancel()
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained")
}
