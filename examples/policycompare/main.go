// Policycompare: the paper's end-to-end method through the public
// mcbench API. Compare two LLC replacement policies on a population of
// multiprogrammed workloads with the fast simulator, estimate the
// coefficient of variation of the per-workload throughput difference,
// and apply the W = 8*cv^2 rule (Section III) to decide how many
// workloads a detailed-simulation study would need.
//
// Run with: go run ./examples/policycompare
package main

import (
	"context"
	"fmt"
	"log"

	"mcbench"
)

const cores = 2

func main() {
	ctx := context.Background()

	// A Lab owns the campaign state: traces, BADCO models and the
	// population sweeps, all built lazily and memoized. QuickConfig uses
	// 20k-µop traces; the 2-core population is the full C(23,2) = 253
	// workload enumeration.
	lab := mcbench.NewLab(mcbench.QuickConfig())
	pop := lab.Population(cores)

	// d(w) = t_Y(w) - t_X(w) over the whole population, simulated with
	// BADCO under both policies (two population sweeps, memoized).
	x, y := mcbench.LRU, mcbench.DRRIP
	d, err := lab.Diffs(ctx, cores, mcbench.IPCT, x, y)
	if err != nil {
		log.Fatal(err)
	}

	cv := mcbench.CoefVar(d)
	fmt.Printf("comparing %s (X) vs %s (Y) on %d workloads (IPCT, %d cores)\n",
		x, y, pop.Size(), cores)
	fmt.Printf("mean d(w) = %+.5f   (positive means %s wins)\n", mcbench.Mean(d), y)
	fmt.Printf("1/cv      = %+.3f\n", 1/cv)

	switch {
	case cv > 10 || cv < -10:
		fmt.Println("=> |cv| > 10: the two policies perform equally on average (paper's rule)")
	case cv < 2 && cv > -2:
		w := mcbench.RequiredSampleSize(cv)
		fmt.Printf("=> |cv| < 2: random sampling suffices; W = 8*cv^2 = %d workloads\n", w)
	default:
		w := mcbench.RequiredSampleSize(cv)
		fmt.Printf("=> cv in [2,10]: random sampling needs W = %d; use workload stratification instead\n", w)
	}
	for _, w := range []int{10, 30, 100} {
		fmt.Printf("confidence with %3d random workloads: %.3f\n", w, mcbench.Confidence(cv, w))
	}
}
