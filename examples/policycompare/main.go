// Policycompare: the paper's end-to-end method. Compare two LLC
// replacement policies on a population of multiprogrammed workloads with
// the fast simulator, estimate the coefficient of variation of the
// per-workload throughput difference, and apply the W = 8*cv^2 rule
// (Section III) to decide how many workloads a detailed-simulation study
// would need.
//
// Run with: go run ./examples/policycompare
package main

import (
	"fmt"
	"log"

	"mcbench/internal/badco"
	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/multicore"
	"mcbench/internal/stats"
	"mcbench/internal/trace"
	"mcbench/internal/workload"
)

const (
	traceLen = 20000
	cores    = 2
)

func main() {
	traces := trace.GenerateSuite(traceLen)
	models, err := multicore.BuildModels(traces, badco.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	names := trace.SuiteNames()

	// The full 2-core population: C(23,2) = 253 workloads.
	pop := workload.Enumerate(len(names), cores)
	ws := make([]multicore.Workload, pop.Size())
	for i, w := range pop.Workloads {
		ws[i] = make(multicore.Workload, len(w))
		for k, b := range w {
			ws[i][k] = names[b]
		}
	}

	// Simulate the whole population under both policies with BADCO.
	throughput := func(pol cache.PolicyName) []float64 {
		rs, err := multicore.SweepApproximate(ws, models, pol, 0)
		if err != nil {
			log.Fatal(err)
		}
		ts := make([]float64, len(rs))
		for i, r := range rs {
			ts[i] = metrics.IPCT.PerWorkload(r.IPC, nil)
		}
		return ts
	}
	x, y := cache.LRU, cache.DRRIP
	tX := throughput(x)
	tY := throughput(y)
	d := metrics.IPCT.Diffs(tX, tY)

	cv := stats.CoefVar(d)
	fmt.Printf("comparing %s (X) vs %s (Y) on %d workloads (IPCT, %d cores)\n",
		x, y, pop.Size(), cores)
	fmt.Printf("mean d(w) = %+.5f   (positive means %s wins)\n", stats.Mean(d), y)
	fmt.Printf("1/cv      = %+.3f\n", 1/cv)

	switch {
	case cv > 10 || cv < -10:
		fmt.Println("=> |cv| > 10: the two policies perform equally on average (paper's rule)")
	case cv < 2 && cv > -2:
		w := stats.RequiredSampleSize(cv)
		fmt.Printf("=> |cv| < 2: random sampling suffices; W = 8*cv^2 = %d workloads\n", w)
	default:
		w := stats.RequiredSampleSize(cv)
		fmt.Printf("=> cv in [2,10]: random sampling needs W = %d; use workload stratification instead\n", w)
	}
	for _, w := range []int{10, 30, 100} {
		fmt.Printf("confidence with %3d random workloads: %.3f\n", w, stats.Confidence(cv, w))
	}
}
