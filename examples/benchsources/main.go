// Command benchsources demonstrates the benchmark-source layer: the
// shared source registry, a scaled synthetic population, simulating
// workloads drawn from it, round-tripping traces through a directory
// source, and a Lab whose campaign runs over a non-default source.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mcbench"
)

func main() {
	ctx := context.Background()

	// A scaled source: 24 reproducible synthetic benchmarks derived
	// from seed 7, populating the three Table-IV intensity classes.
	src, err := mcbench.Suite("scaled:24:7")
	if err != nil {
		log.Fatal(err)
	}
	names := src.Names()
	fmt.Printf("source %s: %d benchmarks (%s ... %s)\n",
		src.Name(), len(names), names[0], names[len(names)-1])
	fmt.Println("registered sources:", mcbench.Suites())

	// Simulate a mixed-intensity workload drawn from it. Traces build
	// lazily inside the source and are shared across calls.
	w := []string{names[2], names[0]} // a high- and a low-intensity pick
	r, err := mcbench.Simulate(ctx, w,
		mcbench.WithSuite(src),
		mcbench.WithPolicy(mcbench.DRRIP),
		mcbench.WithTraceLen(4000))
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range r.Workload {
		fmt.Printf("  %-10s IPC %.3f\n", name, r.IPC[i])
	}

	// Round trip: store one trace, serve it back from a DirSource, and
	// check the simulation reproduces exactly.
	dir, err := os.MkdirTemp("", "mcbench-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tr, err := src.Trace(ctx, names[0], 4000)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.SaveFile(filepath.Join(dir, names[0]+".mcbt")); err != nil {
		log.Fatal(err)
	}
	dsrc, err := mcbench.Suite("dir:" + dir)
	if err != nil {
		log.Fatal(err)
	}
	a, err := mcbench.Simulate(ctx, []string{names[0]}, mcbench.WithSuite(src), mcbench.WithTraceLen(4000))
	if err != nil {
		log.Fatal(err)
	}
	b, err := mcbench.Simulate(ctx, []string{names[0]}, mcbench.WithSuite(dsrc), mcbench.WithTraceLen(4000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip through %s: IPC %.6f vs %.6f (identical: %v)\n",
		dsrc.Name(), a.IPC[0], b.IPC[0], a.IPC[0] == b.IPC[0])

	// A Lab over the scaled source: its populations, classes and sweeps
	// all range over these 24 benchmarks instead of the fixed suite.
	cfg := mcbench.QuickConfig()
	cfg.TraceLen = 4000
	cfg.Source = src
	cfg.PopLimit = 40
	lab := mcbench.NewLab(cfg)
	fmt.Printf("lab over %s: %d benchmarks, %d sampled 2-core workloads\n",
		lab.Suite().Name(), len(lab.Benchmarks()), lab.Population(2).Size())
}
