// Stratification: the paper's main proposal in action. Build workload
// strata from fast-simulator estimates of the per-workload difference
// between two policies, then show how much smaller a stratified sample
// can be than a random one at equal confidence (Section VI-B-2).
//
// Run with: go run ./examples/stratification
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mcbench/internal/badco"
	"mcbench/internal/cache"
	"mcbench/internal/metrics"
	"mcbench/internal/multicore"
	"mcbench/internal/sampling"
	"mcbench/internal/trace"
	"mcbench/internal/workload"
)

const (
	traceLen = 20000
	cores    = 2
	trials   = 2000
)

func main() {
	traces := trace.GenerateSuite(traceLen)
	models, err := multicore.BuildModels(traces, badco.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	names := trace.SuiteNames()
	pop := workload.Enumerate(len(names), cores)

	// BADCO population sweep for the two policies under study.
	sweep := func(pol cache.PolicyName) []float64 {
		ws := make([]multicore.Workload, pop.Size())
		for i, w := range pop.Workloads {
			ws[i] = make(multicore.Workload, len(w))
			for k, b := range w {
				ws[i][k] = names[b]
			}
		}
		rs, err := multicore.SweepApproximate(ws, models, pol, 0)
		if err != nil {
			log.Fatal(err)
		}
		ts := make([]float64, len(rs))
		for i, r := range rs {
			ts[i] = metrics.IPCT.PerWorkload(r.IPC, nil)
		}
		return ts
	}
	d := metrics.IPCT.Diffs(sweep(cache.LRU), sweep(cache.DIP))

	// Build strata from d(w) with the paper's parameters.
	cfg := sampling.WorkloadStrataConfig{MinSize: 20, MaxStdDev: 0.001}
	strata := sampling.NewWorkloadStrata(d, cfg)
	random := sampling.NewSimpleRandom(len(d))
	balanced := sampling.NewBalancedRandom(pop)

	fmt.Printf("DIP vs LRU on %d workloads (%d cores, IPCT): %d strata (WT=%d, TSD=%g)\n",
		pop.Size(), cores, sampling.NumStrata(strata), cfg.MinSize, cfg.MaxStdDev)
	fmt.Println()
	fmt.Printf("%6s  %10s  %12s  %16s\n", "W", "random", "bal-random", "workload-strata")
	rng := rand.New(rand.NewSource(42))
	for _, w := range []int{10, 20, 40, 80, 160} {
		r := sampling.EmpiricalConfidence(rng, d, random, w, trials)
		b := sampling.EmpiricalConfidence(rng, d, balanced, w, trials)
		s := sampling.EmpiricalConfidence(rng, d, strata, w, trials)
		fmt.Printf("%6d  %10.3f  %12.3f  %16.3f\n", w, r, b, s)
	}
	fmt.Println()
	fmt.Println("a confidence near 0 or 1 is decisive; near 0.5 the sample cannot tell the policies apart")
}
