// Stratification: the paper's main proposal in action, through the
// public mcbench API. Build workload strata from fast-simulator
// estimates of the per-workload difference between two policies, then
// show how much smaller a stratified sample can be than a random one at
// equal confidence (Section VI-B-2).
//
// Run with: go run ./examples/stratification
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mcbench"
)

const (
	cores  = 2
	trials = 2000
)

func main() {
	ctx := context.Background()

	// BADCO population sweeps for the two policies under study, via the
	// lab's memoized machinery (QuickConfig: 20k-µop traces, full
	// 253-workload 2-core population).
	lab := mcbench.NewLab(mcbench.QuickConfig())
	pop := lab.Population(cores)
	d, err := lab.Diffs(ctx, cores, mcbench.IPCT, mcbench.LRU, mcbench.DIP)
	if err != nil {
		log.Fatal(err)
	}

	// Build strata from d(w) with the paper's parameters.
	cfg := mcbench.WorkloadStrataConfig{MinSize: 20, MaxStdDev: 0.001}
	strata := mcbench.NewWorkloadStrata(d, cfg)
	random := mcbench.NewSimpleRandom(len(d))
	balanced := mcbench.NewBalancedRandom(pop)

	fmt.Printf("DIP vs LRU on %d workloads (%d cores, IPCT): %d strata (WT=%d, TSD=%g)\n",
		pop.Size(), cores, mcbench.NumStrata(strata), cfg.MinSize, cfg.MaxStdDev)
	fmt.Println()
	fmt.Printf("%6s  %10s  %12s  %16s\n", "W", "random", "bal-random", "workload-strata")
	rng := rand.New(rand.NewSource(42))
	for _, w := range []int{10, 20, 40, 80, 160} {
		r := mcbench.EmpiricalConfidence(rng, d, random, w, trials)
		b := mcbench.EmpiricalConfidence(rng, d, balanced, w, trials)
		s := mcbench.EmpiricalConfidence(rng, d, strata, w, trials)
		fmt.Printf("%6d  %10.3f  %12.3f  %16.3f\n", w, r, b, s)
	}
	fmt.Println()
	fmt.Println("a confidence near 0 or 1 is decisive; near 0.5 the sample cannot tell the policies apart")
}
