package mcbench

import "mcbench/internal/telemetry"

// MetricsSnapshot is a point-in-time view of a telemetry registry:
// counters and gauges by series identity (`name{label="value",...}`),
// histograms summarised as count/sum/quantiles. It is what Metrics()
// returns for the local process, what GET /metrics?format=json serves
// for a server, and what a fleet coordinator scrapes from its workers.
type MetricsSnapshot = telemetry.Snapshot

// HistogramStat summarises one histogram series of a MetricsSnapshot:
// observation count, sum and estimated p50/p95/p99. Series named
// `*_seconds` are in seconds.
type HistogramStat = telemetry.HistogramSnapshot

// Telemetry snapshots the process-wide telemetry registry. (Metrics is
// taken by the paper's throughput-metric catalogue.) Everything the
// library runs locally — Lab products, simulation phase timings, the
// persistent result store's operations — records into it; a server owns
// a private registry instead (scrape it via GET /metrics or
// Client.Metrics). Telemetry can be disabled process-wide by setting
// MCBENCH_TELEMETRY=off before start, which empties this snapshot and
// removes the (already tiny) recording cost from the hot paths.
func Telemetry() MetricsSnapshot { return telemetry.Default().Snapshot() }
