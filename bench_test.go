package mcbench_test

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"

	"mcbench/internal/badco"
	"mcbench/internal/bpred"
	"mcbench/internal/cache"
	"mcbench/internal/cluster"
	"mcbench/internal/cophase"
	"mcbench/internal/experiments"
	"mcbench/internal/metrics"
	"mcbench/internal/multicore"
	"mcbench/internal/profile"
	"mcbench/internal/sampling"
	"mcbench/internal/trace"
)

// The benchmarks regenerate every table and figure of the paper at the
// quick scale (reduced traces, subsampled populations) so that a full
// `go test -bench=.` finishes in minutes while preserving the shapes the
// paper reports. Use `mcbench` (cmd/mcbench) without -quick for the
// paper-scale campaign.
//
// Each benchmark prints its table once, so the -bench output doubles as a
// results report.

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
)

func lab() *experiments.Lab {
	benchOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.QuickConfig())
	})
	return benchLab
}

// warmedLab returns the shared quick lab with the given request plan
// precomputed (campaign-level parallelism, outside the timed region).
// Each benchmark warms only the tables it declares, so a targeted
// -bench run pays for its own products and a full -bench=. run still
// builds every table exactly once across benchmarks.
func warmedLab(b *testing.B, plan func(l *experiments.Lab) []experiments.Request) *experiments.Lab {
	b.Helper()
	l := lab()
	l.Warm(plan(l), 0)
	b.ResetTimer()
	return l
}

// printOnce emits the table on the first iteration only.
func printOnce(b *testing.B, i int, t *experiments.Table) {
	b.Helper()
	if i == 0 {
		t.Fprint(os.Stdout)
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(b, i, experiments.Fig1())
	}
}

func BenchmarkTable4(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.TableIVRequests() })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.TableIV())
	}
}

func BenchmarkTable3(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.TableIIIRequests() })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.TableIIITable(2))
	}
}

func BenchmarkFig2(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.Fig2Requests([]int{2, 4}) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig2Table([]int{2, 4}))
	}
}

func BenchmarkFig3(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.Fig3Requests([]int{2, 4}) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig3Table([]int{2, 4}))
	}
}

func BenchmarkFig4(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.Fig4Requests(4) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig4Table(4))
	}
}

func BenchmarkFig5(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.Fig5Requests(4) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig5Table(4))
	}
}

func BenchmarkFig6(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.Fig6Requests(2) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig6Table(2))
	}
}

func BenchmarkFig7(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.Fig7Requests([]int{2}) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.Fig7Table([]int{2}))
	}
}

func BenchmarkOverhead(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.OverheadRequests(2) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.OverheadTable(2))
	}
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper (design-choice sensitivity).

func BenchmarkAblationStrataParams(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.AblationRequests(2) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.AblationStrataParams(2, 20))
	}
}

func BenchmarkAblationClassification(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.AblationRequests(2) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.AblationClassification(2, 20))
	}
}

func BenchmarkAblationMetricChoice(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.AblationRequests(2) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.AblationMetricChoice(2))
	}
}

func BenchmarkSpeedupAccuracy(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.SpeedupRequests(2) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.SpeedupAccuracyTable(2))
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the simulators themselves (the substance behind
// Table III): per-simulated-µop cost of each simulator.

func benchTracesAndModels(b *testing.B) (map[string]*trace.Trace, map[string]*badco.Model) {
	b.Helper()
	traces := trace.GenerateSuite(20000)
	models, err := multicore.BuildModels(traces, badco.DefaultBuildConfig())
	if err != nil {
		b.Fatal(err)
	}
	return traces, models
}

func BenchmarkDetailedSimulator2Core(b *testing.B) {
	traces, _ := benchTracesAndModels(b)
	w := multicore.Workload{"mcf", "povray"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multicore.Detailed(w, traces, cache.LRU, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBadcoSimulator2Core(b *testing.B) {
	_, models := benchTracesAndModels(b)
	w := multicore.Workload{"mcf", "povray"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multicore.Approximate(w, models, cache.LRU, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBadcoSimulator8Core(b *testing.B) {
	_, models := benchTracesAndModels(b)
	w := multicore.Workload{"mcf", "povray", "gcc", "libquantum", "hmmer", "soplex", "astar", "bzip2"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multicore.Approximate(w, models, cache.LRU, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelBuild(b *testing.B) {
	traces := trace.GenerateSuite(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := badco.Build(traces["gcc"], badco.DefaultBuildConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPopulationSweep measures the full-population BADCO sweep that
// powers Figures 3-7 (2-core population, one policy).
func BenchmarkPopulationSweep(b *testing.B) {
	l := lab()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.BadcoIPC(2, cache.LRU)
	}
	if i := len(l.BadcoIPC(2, cache.LRU)); i != 253 {
		b.Fatalf("population %d", i)
	}
}

func BenchmarkGuideline(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.GuidelineRequests(2) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.GuidelineTable(2, metrics.WSU))
	}
}

// ---------------------------------------------------------------------------
// Extension experiments: the Section II-B cluster-based methods, the
// footnote-4 co-phase matrix, the Table I branch predictor and the CLT
// premise behind equation (5).

func BenchmarkExtMethods(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.ExtMethodsRequests(2) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.ExtMethodsTable(2))
	}
}

func BenchmarkCophaseValidation(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.CophaseTable())
	}
}

func BenchmarkPredictorAblation(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.PredictorTable())
	}
}

func BenchmarkNormality(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.NormalityRequests(2) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.NormalityTable(2))
	}
}

func BenchmarkProfileSuite(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.ProfileTable())
	}
}

func BenchmarkExtPolicies(b *testing.B) {
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return l.ExtPoliciesRequests(2) })
	for i := 0; i < b.N; i++ {
		printOnce(b, i, l.ExtPoliciesTable(2))
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks: per-operation cost of the new subsystems.

func BenchmarkTAGEPredict(b *testing.B) {
	p := bpred.NewDefaultTAGE()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Predict(uint64(0x4000+(i%512)*16), i%7 != 0)
	}
}

func BenchmarkBimodalPredict(b *testing.B) {
	p := bpred.NewBimodal(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Predict(uint64(0x4000+(i%512)*16), i%7 != 0)
	}
}

func BenchmarkProfileCompute(b *testing.B) {
	traces := trace.GenerateSuite(20000)
	tr := traces["mcf"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Compute(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansWorkloads(b *testing.B) {
	l := lab()
	pop := l.Population(2)
	wf, err := sampling.WorkloadFeatures(pop, l.BenchFeatures())
	if err != nil {
		b.Fatal(err)
	}
	norm := cluster.Normalize(wf)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(rng, norm, 10, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceEncode(b *testing.B) {
	traces := trace.GenerateSuite(20000)
	tr := traces["gcc"]
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		m, err := tr.WriteTo(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		n = m
	}
	b.SetBytes(n)
}

func BenchmarkTraceDecode(b *testing.B) {
	traces := trace.GenerateSuite(20000)
	var buf bytes.Buffer
	if _, err := traces["gcc"].WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Read(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCophaseRun(b *testing.B) {
	traces := trace.GenerateSuite(20000)
	for i := 0; i < b.N; i++ {
		sim, err := cophase.New([]string{"soplex", "gobmk"}, traces, cophase.Config{
			Phases: 10, SampleOps: 500, WarmOps: 2000, Policy: cache.LRU,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(20000); err != nil {
			b.Fatal(err)
		}
	}
}
