package mcbench_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"

	"mcbench/internal/badco"
	"mcbench/internal/bpred"
	"mcbench/internal/cache"
	"mcbench/internal/cluster"
	"mcbench/internal/cophase"
	"mcbench/internal/experiments"
	"mcbench/internal/multicore"
	"mcbench/internal/profile"
	"mcbench/internal/sampling"
	"mcbench/internal/telemetry"
	"mcbench/internal/trace"
)

// The benchmarks regenerate every table and figure of the paper at the
// quick scale (reduced traces, subsampled populations) so that a full
// `go test -bench=.` finishes in minutes while preserving the shapes the
// paper reports. Use `mcbench` (cmd/mcbench) without -quick for the
// paper-scale campaign.
//
// Each benchmark prints its table once, so the -bench output doubles as a
// results report.

var bctx = context.Background()

// simCtx carries a telemetry span the way the lab's product runs do, so
// the simulator micro-benchmarks time the instrumented kernel path (the
// span is built once, outside the timed loop). scripts/bench.sh diffs
// these against a MCBENCH_TELEMETRY=off pass to bound the recording
// overhead; without the span the instrumented run would measure the
// disabled fast path and the A/B would be vacuous.
func simCtx() context.Context {
	return telemetry.NewContext(context.Background(), telemetry.StartSpan())
}

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
)

func lab() *experiments.Lab {
	benchOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.QuickConfig())
	})
	return benchLab
}

// warmedLab returns the shared quick lab with the given request plan
// precomputed (campaign-level parallelism, outside the timed region).
// Each benchmark warms only the tables it declares, so a targeted
// -bench run pays for its own products and a full -bench=. run still
// builds every table exactly once across benchmarks.
func warmedLab(b *testing.B, plan func(l *experiments.Lab) []experiments.Request) *experiments.Lab {
	b.Helper()
	l := lab()
	if _, err := l.Warm(bctx, plan(l), 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	return l
}

// printOnce emits the table on the first iteration only.
func printOnce(b *testing.B, i int, t *experiments.Table) {
	b.Helper()
	if i == 0 {
		t.Fprint(os.Stdout)
	}
}

// benchExperiment times one registered experiment end to end (reads of
// memoized tables plus the experiment's own Monte-Carlo work).
func benchExperiment(b *testing.B, name string, p experiments.Params) {
	e, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	l := warmedLab(b, func(l *experiments.Lab) []experiments.Request { return e.Requests(l, p) })
	for i := 0; i < b.N; i++ {
		t, err := e.Run(bctx, l, p)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, t)
	}
}

func params2() experiments.Params {
	return experiments.Params{Cores: 2, CoreCounts: []int{2}}
}

func BenchmarkFig1(b *testing.B)     { benchExperiment(b, "fig1", params2()) }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "table4", params2()) }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3", params2()) }
func BenchmarkFig4(b *testing.B)     { benchExperiment(b, "fig4", params2()) }
func BenchmarkFig5(b *testing.B)     { benchExperiment(b, "fig5", params2()) }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6", params2()) }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "fig7", params2()) }
func BenchmarkOverhead(b *testing.B) { benchExperiment(b, "overhead", params2()) }

func BenchmarkFig2(b *testing.B) {
	benchExperiment(b, "fig2", experiments.Params{Cores: 2, CoreCounts: []int{2, 4}})
}

func BenchmarkFig3(b *testing.B) {
	benchExperiment(b, "fig3", experiments.Params{Cores: 2, CoreCounts: []int{2, 4}})
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper (design-choice sensitivity).

func BenchmarkAblationStrataParams(b *testing.B)   { benchExperiment(b, "ablation-strata", params2()) }
func BenchmarkAblationClassification(b *testing.B) { benchExperiment(b, "ablation-classes", params2()) }
func BenchmarkAblationMetricChoice(b *testing.B)   { benchExperiment(b, "ablation-metrics", params2()) }
func BenchmarkSpeedupAccuracy(b *testing.B)        { benchExperiment(b, "speedup", params2()) }
func BenchmarkGuideline(b *testing.B)              { benchExperiment(b, "guideline", params2()) }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the simulators themselves (the substance behind
// Table III): per-simulated-µop cost of each simulator.

func benchTracesAndModels(b *testing.B) (multicore.TraceMap, map[string]*badco.Model) {
	b.Helper()
	traces := multicore.TraceMap(trace.GenerateSuite(20000))
	names := make([]string, 0, len(traces))
	for n := range traces {
		names = append(names, n)
	}
	models, err := multicore.BuildModels(bctx, traces, names, badco.DefaultBuildConfig())
	if err != nil {
		b.Fatal(err)
	}
	return traces, models
}

func BenchmarkDetailedSimulator2Core(b *testing.B) {
	traces, _ := benchTracesAndModels(b)
	w := multicore.Workload{"mcf", "povray"}
	ctx := simCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multicore.Detailed(ctx, w, traces, cache.LRU, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBadcoSimulator2Core(b *testing.B) {
	_, models := benchTracesAndModels(b)
	w := multicore.Workload{"mcf", "povray"}
	ctx := simCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multicore.Approximate(ctx, w, models, cache.LRU, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBadcoSimulator8Core(b *testing.B) {
	_, models := benchTracesAndModels(b)
	w := multicore.Workload{"mcf", "povray", "gcc", "libquantum", "hmmer", "soplex", "astar", "bzip2"}
	ctx := simCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multicore.Approximate(ctx, w, models, cache.LRU, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Checkpointed policy sweeps: k policies over one workload, the warmup
// prefix paid once through snapshot/restore versus once per policy. The
// window shape follows sample-simulation methodology (a long warming
// prefix, a short measured sample), where the prefix dominates. Both
// variants run the policies sequentially, so the ratio isolates the
// shared warmup itself (no parallelism on either side) and mirrors the
// per-workload task of the lab's grouped detailed sweep.

const (
	sweepTraceOps  = 100000
	sweepWarmupOps = 90000
	sweepQuotaOps  = 5000
)

func benchSweepTraces(b *testing.B) (multicore.TraceMap, multicore.Workload) {
	b.Helper()
	traces := multicore.TraceMap{}
	w := multicore.Workload{"mcf", "povray"}
	for _, name := range w {
		p, ok := trace.ByName(name)
		if !ok {
			b.Fatalf("no suite benchmark %q", name)
		}
		tr, err := trace.Generate(p, sweepTraceOps)
		if err != nil {
			b.Fatal(err)
		}
		traces[name] = tr
	}
	return traces, w
}

func BenchmarkPolicySweepSharedWarmup(b *testing.B) {
	traces, w := benchSweepTraces(b)
	pols := cache.PaperPolicies()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp, err := multicore.DetailedWarmup(bctx, w, traces, pols[0], sweepWarmupOps)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pols {
			if _, err := multicore.DetailedFrom(bctx, cp, traces, p, sweepQuotaOps); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPolicySweepColdWarmup(b *testing.B) {
	traces, w := benchSweepTraces(b)
	pols := cache.PaperPolicies()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pols {
			if _, err := multicore.DetailedWithWarmup(bctx, w, traces, p, sweepWarmupOps, sweepQuotaOps); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkModelBuild(b *testing.B) {
	traces := trace.GenerateSuite(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := badco.Build(traces["gcc"], badco.DefaultBuildConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPopulationSweep measures the full-population BADCO sweep that
// powers Figures 3-7 (2-core population, one policy).
func BenchmarkPopulationSweep(b *testing.B) {
	l := lab()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.BadcoIPC(bctx, 2, cache.LRU); err != nil {
			b.Fatal(err)
		}
	}
	tab, err := l.BadcoIPC(bctx, 2, cache.LRU)
	if err != nil {
		b.Fatal(err)
	}
	if len(tab) != 253 {
		b.Fatalf("population %d", len(tab))
	}
}

// ---------------------------------------------------------------------------
// Extension experiments: the Section II-B cluster-based methods, the
// footnote-4 co-phase matrix, the Table I branch predictor and the CLT
// premise behind equation (5).

func BenchmarkExtMethods(b *testing.B)        { benchExperiment(b, "methods", params2()) }
func BenchmarkCophaseValidation(b *testing.B) { benchExperiment(b, "cophase", params2()) }
func BenchmarkPredictorAblation(b *testing.B) { benchExperiment(b, "predictors", params2()) }
func BenchmarkNormality(b *testing.B)         { benchExperiment(b, "normality", params2()) }
func BenchmarkProfileSuite(b *testing.B)      { benchExperiment(b, "profiles", params2()) }
func BenchmarkExtPolicies(b *testing.B)       { benchExperiment(b, "policies", params2()) }

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks: per-operation cost of the new subsystems.

func BenchmarkTAGEPredict(b *testing.B) {
	p := bpred.NewDefaultTAGE()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Predict(uint64(0x4000+(i%512)*16), i%7 != 0)
	}
}

func BenchmarkBimodalPredict(b *testing.B) {
	p := bpred.NewBimodal(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Predict(uint64(0x4000+(i%512)*16), i%7 != 0)
	}
}

func BenchmarkProfileCompute(b *testing.B) {
	traces := trace.GenerateSuite(20000)
	tr := traces["mcf"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Compute(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansWorkloads(b *testing.B) {
	l := lab()
	pop := l.Population(2)
	feats, err := l.BenchFeatures(bctx)
	if err != nil {
		b.Fatal(err)
	}
	wf, err := sampling.WorkloadFeatures(pop, feats)
	if err != nil {
		b.Fatal(err)
	}
	norm := cluster.Normalize(wf)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(rng, norm, 10, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceEncode(b *testing.B) {
	traces := trace.GenerateSuite(20000)
	tr := traces["gcc"]
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		m, err := tr.WriteTo(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		n = m
	}
	b.SetBytes(n)
}

func BenchmarkTraceDecode(b *testing.B) {
	traces := trace.GenerateSuite(20000)
	var buf bytes.Buffer
	if _, err := traces["gcc"].WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Read(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCophaseRun(b *testing.B) {
	traces := trace.GenerateSuite(20000)
	for i := 0; i < b.N; i++ {
		sim, err := cophase.New([]string{"soplex", "gobmk"}, traces, cophase.Config{
			Phases: 10, SampleOps: 500, WarmOps: 2000, Policy: cache.LRU,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(20000); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Sampled vs exact detailed simulation on 10×-length traces — the regime
// systematic sampling exists for. The pair shares one trace set so
// scripts/bench.sh can report their ratio as the mix sampled-vs-exact
// speedup (a 2-core heterogeneous mix, the estimator's hardest case for
// accuracy but a fair timing A/B). The error side of the frontier comes
// from the sampling-accuracy experiment, which bench.sh also runs.

func benchLongTraces(b *testing.B) (multicore.TraceMap, multicore.Workload) {
	b.Helper()
	traces := multicore.TraceMap{}
	w := multicore.Workload{"mcf", "povray"}
	for _, name := range w {
		p, ok := trace.ByName(name)
		if !ok {
			b.Fatalf("no suite benchmark %q", name)
		}
		tr, err := trace.Generate(p, 200000)
		if err != nil {
			b.Fatal(err)
		}
		traces[name] = tr
	}
	return traces, w
}

func BenchmarkExactDetailed2Core10x(b *testing.B) {
	traces, w := benchLongTraces(b)
	ctx := simCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multicore.Detailed(ctx, w, traces, cache.LRU, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampledDetailed2Core10x(b *testing.B) {
	traces, w := benchLongTraces(b)
	spec := multicore.SamplingSpec{Unit: 10000, Window: 2000, Warmup: 2000}
	ctx := simCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := multicore.DetailedSampled(ctx, w, traces, cache.LRU, spec, 0)
		if err != nil {
			b.Fatal(err)
		}
		if r.Windows != 20 {
			b.Fatalf("windows = %d, want 20", r.Windows)
		}
	}
}
