// Package mcbench is a reproduction, in pure Go, of "Selecting Benchmark
// Combinations for the Evaluation of Multicore Throughput" (R. A.
// Velásquez, P. Michaud, A. Seznec — ISPASS 2013), exposed as a
// library: the module root is the public, context-aware API over the
// internal simulation stack.
//
// # Library usage
//
// Simulate runs one multiprogrammed workload with either simulator,
// configured by functional options:
//
//	r, err := mcbench.Simulate(ctx, []string{"mcf", "povray"},
//	    mcbench.WithPolicy(mcbench.DRRIP),
//	    mcbench.WithSimulator(mcbench.BADCO),
//	    mcbench.WithTraceLen(20000))
//
// Sweep does the same for many workloads at once, sharing traces and
// models and parallelising across the process-wide simulation budget.
//
// WithWarmup opens the measurement window after a warming prefix, the
// sample-simulation protocol: caches, predictors and prefetchers warm
// for n committed µops per thread, then IPC and cycles cover the quota
// beyond the boundary:
//
//	r, err := mcbench.Simulate(ctx, []string{"mcf", "povray"},
//	    mcbench.WithPolicy(mcbench.DRRIP),
//	    mcbench.WithQuota(10000),
//	    mcbench.WithWarmup(90000))
//
// Under a Lab, the warmed machine state is snapshotted through the
// kernel's checkpoint layer and every case-study policy measures from
// the same restored prefix, so a k-policy sweep pays the (dominant)
// warmup once instead of k times — see the README's "Checkpointed
// sweeps" section for the equivalence argument and measured speedups.
//
// WithSampling trades exactness for time on long traces: the detailed
// engine measures one window per sampling unit (SMARTS-style systematic
// sampling), fast-forwards the rest functionally — caches and
// predictors stay warm, the out-of-order pipeline is skipped — and the
// per-window CPIs fold into a steady-state IPC estimate with a 0.95
// Student-t confidence interval:
//
//	r, err := mcbench.Simulate(ctx, []string{"mcf"},
//	    mcbench.WithSampling(10000, 2000, 2000),
//	    mcbench.WithTraceLen(10*mcbench.DefaultTraceLen))
//	// r.IPC[0] ± r.CIHalf[0] over r.Windows windows; r.CV
//
// Sampling requires the Detailed engine and is mutually exclusive with
// WithWarmup; the estimate deliberately excludes the cold-start
// transient a full run from reset includes. See the README's "Sampled
// simulation" section for the speed/accuracy frontier and the known
// bias modes (heterogeneous mixes fast-forward in lockstep, so singles
// and homogeneous mixes are the reliable regime).
//
// # Benchmark sources
//
// Workload names resolve through a Source — a named, lazily-memoized
// provider of benchmark traces — rather than a hard-wired list. The
// fixed 22-benchmark suite is just the default source; scaled synthetic
// populations ("scaled:B[:seed]", B up to 512) and directories of
// recorded traces ("dir:PATH") plug in through the same interface:
//
//	src, _ := mcbench.Suite("scaled:64:7")
//	r, err := mcbench.Simulate(ctx, []string{"high-005", "low-000"},
//	    mcbench.WithSuite(src))
//
// Sources build each trace on first use and release it on demand, so
// the one-shot consumers (BADCO model building, the alone-run
// measurements) keep only the in-flight working set resident instead of
// all B traces; detailed population sweeps retain the benchmarks they
// actually touch for the lab's lifetime.
// Suite(spec) returns process-shared instances (the Suites() registry),
// so repeated calls never regenerate traces a source already holds, and
// Config.Source points a whole Lab campaign at any source.
//
// A Lab owns a whole experiment campaign: memoized population sweeps,
// reference IPCs and MPKI measurements behind a single-flight guard,
// optionally persisted across processes via Config.CacheDir (keyed by
// source identity, among the other campaign parameters). Every
// registered experiment — the paper's figures and tables plus the
// extensions; see Experiments() — runs through it:
//
//	lab := mcbench.NewLab(mcbench.QuickConfig())
//	table, err := lab.Run(ctx, "fig6", 2)
//	table.Fprint(os.Stdout)
//
// # Serving
//
// Serve exposes the same engine as a long-running HTTP JSON service —
// a job queue over one shared Lab — and Client consumes it. Identical
// in-flight submissions coalesce onto one job server-side, so M
// clients asking for the same sweep cost one computation:
//
//	go mcbench.Serve(ctx, mcbench.DefaultConfig(), mcbench.ServeOptions{Addr: ":8080"})
//	...
//	c, err := mcbench.NewClient("http://127.0.0.1:8080")
//	st, err := c.SubmitExperiment(ctx, "fig6", 4)
//	res, err := c.Wait(ctx, st.ID)
//	fmt.Print(res.Text)
//
// Jobs stream progress (Client.Events) as the campaign's tables land,
// and cancelling the Serve context drains gracefully: completed sweeps
// are already persisted via Config.CacheDir, and a restarted server
// serves them from disk. The `mcbench serve` subcommand wraps Serve;
// see the README's "Serving" section for the HTTP surface.
//
// Servers federate into a fleet: a node started with ServeOptions.Join
// (the `serve -join` flag) registers as a worker of the coordinator at
// that address, holding its membership under a heartbeat lease. The
// coordinator shards campaign warm plans across workers by rendezvous
// hashing on each product's memo identity, collects the swept tables
// through the content-addressed result fabric (GET /cache/{key},
// CRC32-C-verified on arrival), and steals unfinished shards back from
// dead or straggling workers — the sharded result is bit-identical to
// the single-node run, with zero duplicate sweeps fleet-wide:
//
//	go mcbench.Serve(ctx, cfg, mcbench.ServeOptions{Addr: ":8390"}) // coordinator
//	go mcbench.Serve(ctx, cfg, mcbench.ServeOptions{Addr: ":8391", Join: "127.0.0.1:8390"})
//	go mcbench.Serve(ctx, cfg, mcbench.ServeOptions{Addr: ":8392", Join: "127.0.0.1:8390"})
//	...
//	st, err := c.SubmitWarm(ctx, products) // shards across the fleet
//
// The join handshake checks build identity and lab configuration, so a
// mixed-version fleet is rejected (409) instead of computing a mixed
// answer; see the README's "Distributed lab" section.
//
// The client is resilient by default and tunable via ClientOptions:
//
//	c, err := mcbench.NewClient("http://127.0.0.1:8080", mcbench.ClientOptions{
//		MaxRetries: 6,                      // 0 = default (4), negative = off
//		BaseDelay:  200 * time.Millisecond, // exponential backoff, jittered
//	})
//
// Connection errors and 503 rejections retry for every method — a 503
// means the submission was rejected before it was enqueued (nothing
// ran, nothing will), and its Retry-After header is honoured — while
// 429/502/504 retry idempotent GETs only. Events reconnects from its
// last-seen cursor across dropped polls, and Wait survives transient
// outages the same way. Server errors are typed:
//
//	var ae *mcbench.APIError
//	if errors.As(err, &ae) && ae.StatusCode == 503 { ... }
//	if mcbench.IsNotFound(err) { ... } // job ID gone (e.g. server restarted)
//
// # Observability
//
// The whole stack is instrumented through a dependency-free telemetry
// registry (internal/telemetry): lab products record end-to-end latency
// and a per-phase breakdown (trace load, model build, warmup,
// fast-forward, measure, store save) via context-carried spans, and the
// persistent store counts its saves, hits, misses and quarantines.
// Telemetry() snapshots the process-wide registry; a server exports its
// own at GET /metrics (Prometheus text exposition, or JSON via
// Client.Metrics), a fleet coordinator aggregates its workers at
// GET /fleet/metrics (Client.FleetMetrics), and ServeOptions.Pprof
// mounts net/http/pprof opt-in:
//
//	snap, err := c.Metrics(ctx)
//	fmt.Println(snap.Counter("mcbench_jobs_completed_total"))
//	st := c.Stats() // the client's own attempts/retries/latency
//
// `mcbench top` renders the live view in a terminal; `mcbench -timing`
// prints the phase table after a batch campaign. Recording is zero-alloc
// on the hot path, bounded ≤ 1% of simulator time (the
// MCBENCH_TELEMETRY=off A/B in scripts/bench.sh), and disabled entirely
// by that switch. See the README's "Observability" section for the
// metric catalogue.
//
// All entry points take a context.Context; cancellation aborts in-flight
// simulations promptly, and completed products stay memoized, so an
// interrupted campaign resumes where it stopped. The analysis machinery
// the paper builds on top of the simulators — throughput metrics, the
// CLT confidence model, the four sampling methods, cluster-based
// selection, the co-phase matrix method — is exported here as well; the
// runnable examples under examples/ exercise all of it through this
// package alone.
//
// The repository contains the paper's full experimental stack, built from
// scratch on the standard library:
//
//   - internal/trace — a 22-benchmark synthetic suite standing in for SPEC
//     CPU2006, with EIO-style binary serialisation;
//   - internal/bench — the benchmark-source layer: the fixed suite,
//     scaled procedural populations (B ∈ [12, 512]) and directory-backed
//     recorded traces behind one lazily-memoizing interface;
//   - internal/cache, internal/mem, internal/uncore — the shared memory
//     hierarchy with the five LLC replacement policies of the case study
//     (LRU, RND, FIFO, DIP, DRRIP) plus SRRIP, PLRU and SHiP for ablations;
//   - internal/cpu, internal/bpred — a detailed out-of-order core model
//     (the Zesto role) with the Table I front end (TAGE, BTAC, indirect
//     predictor, return address stack);
//   - internal/badco — the BADCO behavioural core models (the fast
//     approximate simulator);
//   - internal/multicore — multiprogrammed-workload simulation;
//   - internal/cophase — the co-phase matrix method of the paper's
//     footnote 4;
//   - internal/workload, internal/metrics, internal/stats,
//     internal/sampling — the paper's contribution: workload combinatorics,
//     throughput metrics, the CLT confidence model, and the four sampling
//     methods (random, balanced random, benchmark stratification, workload
//     stratification);
//   - internal/profile, internal/cluster — microarchitecture-independent
//     profiling and cluster analysis, powering the two Section II-B
//     selection methods (cluster-derived benchmark classes, representative
//     workload clustering);
//   - internal/experiments — drivers regenerating every table and figure,
//     with text charts from internal/plot;
//   - internal/serve — the experiment service: job queue, request dedup,
//     progress streaming and the cache-browsing API behind Serve/Client;
//   - internal/fleet — the distributed lab: rendezvous-hashed shard
//     partitioning, lease-based membership, work-stealing dispatch and
//     the worker-side join/heartbeat agent behind ServeOptions.Join;
//   - cmd/mcbench, cmd/tracegen — the command-line front ends.
//
// The experiments package is a concurrent campaign runner: a Lab memoizes
// its expensive products (population IPC tables per core count, policy
// and simulator; reference IPCs; the MPKI measurement) with per-key
// single-flight semantics, each experiment declares the products it
// reads as a []Request, and Lab.Warm precomputes a whole campaign's plan
// with bounded parallelism — concurrent requests for one table share a
// single population sweep while distinct tables sweep in parallel.
//
// Under the campaign sits an allocation-free, batch-scheduled simulation
// kernel: the multicore driver dispatches each core in minimum-clock
// batches (StepUntil) instead of per µop — provably the same schedule,
// enforced bit-for-bit by golden tests against a retained per-step
// reference driver — and the cpu/cache/uncore hot paths run free of map
// traffic and steady-state allocations. Every machine component also
// snapshots into and restores from reusable state buffers
// (Snapshot/Restore on cpu.Core, badco.Machine, uncore and below), the
// checkpoint layer behind WithWarmup's shared-warmup sweeps and the
// results store's crash-resume checkpoints; golden tests pin
// snapshot→restore→run bit-identical to the uninterrupted run. See
// README.md's Performance, "Checkpointed sweeps" and "Sampled
// simulation" sections, with measured speedups in BENCH_2.json,
// BENCH_6.json and BENCH_9.json (scripts/bench.sh).
//
// See DESIGN.md for the system inventory and substitutions, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each table and figure.
package mcbench
