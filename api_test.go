package mcbench_test

import (
	"context"
	"errors"
	"flag"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mcbench"
)

// apiCtx is the background context of the API tests.
var apiCtx = context.Background()

// tinyConfig keeps the public-API tests fast: 4k-µop traces.
func tinyConfig() mcbench.Config {
	cfg := mcbench.QuickConfig()
	cfg.TraceLen = 4000
	return cfg
}

func TestSimulateBothEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	workload := []string{"mcf", "povray"}
	det, err := mcbench.Simulate(apiCtx, workload,
		mcbench.WithPolicy(mcbench.LRU),
		mcbench.WithTraceLen(4000))
	if err != nil {
		t.Fatal(err)
	}
	app, err := mcbench.Simulate(apiCtx, workload,
		mcbench.WithPolicy(mcbench.LRU),
		mcbench.WithSimulator(mcbench.BADCO),
		mcbench.WithTraceLen(4000))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*mcbench.Result{det, app} {
		if len(r.IPC) != 2 || len(r.Cycles) != 2 {
			t.Fatalf("%v: shape %d/%d", r.Engine, len(r.IPC), len(r.Cycles))
		}
		if r.Instructions != 4000 {
			t.Errorf("%v: quota %d", r.Engine, r.Instructions)
		}
		for i, v := range r.IPC {
			if v <= 0 || v > 4 {
				t.Errorf("%v: IPC[%d] = %g implausible", r.Engine, i, v)
			}
		}
	}
	// BADCO approximates the detailed result (generous bound at this
	// tiny trace scale).
	for i := range det.IPC {
		rel := (app.IPC[i] - det.IPC[i]) / det.IPC[i]
		if rel < -0.5 || rel > 0.5 {
			t.Errorf("thread %d: BADCO %.3f vs detailed %.3f", i, app.IPC[i], det.IPC[i])
		}
	}
}

func TestSimulateWithCoresReplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	r, err := mcbench.Simulate(apiCtx, []string{"gcc"},
		mcbench.WithCores(2),
		mcbench.WithTraceLen(4000))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IPC) != 2 || r.Workload[0] != "gcc" || r.Workload[1] != "gcc" {
		t.Fatalf("replicated workload %v, IPCs %v", r.Workload, r.IPC)
	}
}

func TestSimulateValidation(t *testing.T) {
	cases := []struct {
		name     string
		workload []string
		opts     []mcbench.Option
	}{
		{"empty workload", nil, nil},
		{"unknown benchmark", []string{"nosuch"}, nil},
		{"cores mismatch", []string{"mcf", "gcc"}, []mcbench.Option{mcbench.WithCores(4)}},
		{"bad policy", []string{"mcf"}, []mcbench.Option{mcbench.WithPolicy("NOPE")}},
		{"bad trace length", []string{"mcf"}, []mcbench.Option{mcbench.WithTraceLen(-1)}},
		{"warmup beyond default quota", []string{"mcf"}, []mcbench.Option{
			mcbench.WithTraceLen(4000), mcbench.WithWarmup(4001)}},
		{"warmup beyond explicit quota", []string{"mcf"}, []mcbench.Option{
			mcbench.WithQuota(2000), mcbench.WithWarmup(3000)}},
	}
	for _, c := range cases {
		if _, err := mcbench.Simulate(apiCtx, c.workload, c.opts...); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// TestSimulateWithWarmup exercises the public warmup option on both
// engines: the measurement covers quota µops beyond the warmed prefix,
// and Sweep's warmed path agrees bit-for-bit with per-workload Simulate.
func TestSimulateWithWarmup(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	workload := []string{"mcf", "soplex"}
	opts := func(more ...mcbench.Option) []mcbench.Option {
		return append([]mcbench.Option{
			mcbench.WithTraceLen(4000),
			mcbench.WithQuota(2500),
			mcbench.WithWarmup(1500),
			mcbench.WithPolicy(mcbench.DRRIP),
		}, more...)
	}
	for _, engine := range []mcbench.Engine{mcbench.Detailed, mcbench.BADCO} {
		warmed, err := mcbench.Simulate(apiCtx, workload, opts(mcbench.WithSimulator(engine))...)
		if err != nil {
			t.Fatal(err)
		}
		if warmed.Instructions != 2500 {
			t.Errorf("%v: measured quota %d, want 2500", engine, warmed.Instructions)
		}
		cold, err := mcbench.Simulate(apiCtx, workload,
			mcbench.WithTraceLen(4000), mcbench.WithQuota(2500),
			mcbench.WithPolicy(mcbench.DRRIP), mcbench.WithSimulator(engine))
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range warmed.IPC {
			if warmed.IPC[i] != cold.IPC[i] {
				same = false
			}
		}
		if same {
			t.Errorf("%v: warmup had no effect on the measurement window", engine)
		}

		swept, err := mcbench.Sweep(apiCtx, [][]string{workload, {"gcc", "hmmer"}},
			opts(mcbench.WithSimulator(engine))...)
		if err != nil {
			t.Fatal(err)
		}
		for i := range swept[0].IPC {
			if swept[0].IPC[i] != warmed.IPC[i] {
				t.Errorf("%v: sweep IPC[%d] = %v, Simulate %v", engine, i, swept[0].IPC[i], warmed.IPC[i])
			}
		}
	}
}

func TestSimulateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := mcbench.Simulate(ctx, []string{"mcf", "povray"}, mcbench.WithTraceLen(20000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled Simulate took %v", elapsed)
	}
}

func TestLabRunRegistryExperiment(t *testing.T) {
	l := mcbench.NewLab(tinyConfig())
	// fig1 and config are simulation-free: instant even in -short runs.
	for _, name := range []string{"fig1", "config"} {
		tab, err := l.Run(apiCtx, name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
		if !strings.Contains(tab.String(), "==") {
			t.Errorf("%s: unrenderable table", name)
		}
	}
	// Unknown names suggest the nearest registered experiment — in Run
	// and in Warm alike (a typo must not silently warm nothing).
	_, err := l.Run(apiCtx, "fig12", 0)
	if err == nil || !strings.Contains(err.Error(), `"fig1"`) {
		t.Errorf("unknown-name error %v lacks suggestion", err)
	}
	if _, err := l.Warm(apiCtx, []string{"fgi1"}, 0); err == nil {
		t.Error("Warm accepted an unknown experiment name")
	}
	// fig1 declares no expensive products, so warming it is instant and
	// must succeed.
	if _, err := l.Warm(apiCtx, []string{"fig1"}, 0); err != nil {
		t.Errorf("Warm rejected a valid name: %v", err)
	}
}

func TestLabSimulateSharesState(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	l := mcbench.NewLab(tinyConfig())
	a, err := l.Simulate(apiCtx, []string{"mcf", "povray"}, mcbench.WithSimulator(mcbench.BADCO))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.IPC) != 2 {
		t.Fatalf("shape %v", a.IPC)
	}
	// WithTraceLen conflicts with the lab's configured length.
	if _, err := l.Simulate(apiCtx, []string{"mcf"}, mcbench.WithTraceLen(100)); err == nil {
		t.Error("Lab.Simulate accepted WithTraceLen")
	}
}

func TestExperimentsCatalogue(t *testing.T) {
	infos := mcbench.Experiments()
	if len(infos) < 20 {
		t.Fatalf("%d experiments, want >= 20", len(infos))
	}
	byName := map[string]mcbench.ExperimentInfo{}
	for _, e := range infos {
		byName[e.Name] = e
		if e.Synopsis == "" {
			t.Errorf("%s: empty synopsis", e.Name)
		}
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"table3", "table4", "overhead", "config", "speedup", "guideline", "methods",
		"cophase", "predictors", "normality", "profiles", "policies",
		"ablation-strata", "ablation-classes", "ablation-metrics"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("catalogue missing %s", want)
		}
	}
	// Paper experiments first.
	if infos[0].Group != "paper" {
		t.Errorf("catalogue starts with group %q", infos[0].Group)
	}
}

func TestBenchmarksAndTraces(t *testing.T) {
	names := mcbench.Benchmarks()
	if len(names) != 22 {
		t.Fatalf("%d benchmarks", len(names))
	}
	tr, err := mcbench.GenerateTrace("mcf", 1000)
	if err != nil || tr.Len() != 1000 {
		t.Fatalf("GenerateTrace: %v, len %d", err, tr.Len())
	}
	if _, err := mcbench.GenerateTrace("nosuch", 1000); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := mcbench.GenerateTrace("mcf", -1); err == nil {
		t.Error("negative length accepted")
	}
}

func TestPopulationHelpers(t *testing.T) {
	pop := mcbench.EnumerateWorkloads(2)
	if pop.Size() != 253 {
		t.Fatalf("2-core population %d", pop.Size())
	}
	ws := mcbench.WorkloadNames(pop)
	if len(ws) != 253 || len(ws[0]) != 2 {
		t.Fatalf("workload names shape %d/%d", len(ws), len(ws[0]))
	}
}

// TestExamplesUsePublicAPIOnly enforces the library boundary: the
// runnable examples must compile against the public package alone,
// never internal/.
func TestExamplesUsePublicAPIOnly(t *testing.T) {
	mains, err := filepath.Glob(filepath.Join("examples", "*", "main.go"))
	if err != nil || len(mains) < 9 {
		t.Fatalf("found %d examples (err %v), want 9", len(mains), err)
	}
	fset := token.NewFileSet()
	for _, path := range mains {
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			if strings.Contains(imp.Path.Value, "internal/") {
				t.Errorf("%s imports %s — examples must use the public API", path, imp.Path.Value)
			}
		}
	}
}

// updateAPI regenerates the API-surface golden.
var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api.txt from go doc -all")

// TestAPISurfaceGolden pins the public API surface (go doc -all output)
// to a golden file, so any change to the exported API or its
// documentation shows up explicitly in review. Regenerate intentionally
// with: go test -run TestAPISurfaceGolden -update-api .
func TestAPISurfaceGolden(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	out, err := exec.Command(goBin, "doc", "-all", ".").Output()
	if err != nil {
		t.Fatalf("go doc -all: %v", err)
	}
	path := filepath.Join("testdata", "api.txt")
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing API golden (regenerate with -update-api): %v", err)
	}
	if string(out) != string(want) {
		t.Errorf("public API surface changed; review the diff and regenerate with -update-api\n(go doc -all . is %d bytes, golden %d bytes)", len(out), len(want))
	}
}

func TestSuiteRegistryShares(t *testing.T) {
	a, err := mcbench.Suite("scaled:16:3")
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent specs resolve to the same shared instance.
	b, err := mcbench.Suite("scaled:16:3")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equal specs returned distinct sources")
	}
	if got := len(a.Names()); got != 16 {
		t.Fatalf("scaled:16 has %d names", got)
	}
	found := false
	for _, n := range mcbench.Suites() {
		found = found || n == "scaled:16:3"
	}
	if !found {
		t.Errorf("Suites() = %v missing scaled:16:3", mcbench.Suites())
	}
	if _, err := mcbench.Suite("scaled:9999"); err == nil {
		t.Error("out-of-range scaled spec accepted")
	}
}

func TestSimulateWithSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	src, err := mcbench.Suite("scaled:12:5")
	if err != nil {
		t.Fatal(err)
	}
	names := src.Names()
	r, err := mcbench.Simulate(apiCtx, []string{names[0], names[2]},
		mcbench.WithSuite(src), mcbench.WithTraceLen(4000))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IPC) != 2 || r.Instructions != 4000 {
		t.Fatalf("shape %v quota %d", r.IPC, r.Instructions)
	}
	// Suite benchmarks are not visible through a scaled source.
	if _, err := mcbench.Simulate(apiCtx, []string{"mcf"},
		mcbench.WithSuite(src), mcbench.WithTraceLen(4000)); err == nil {
		t.Error("suite benchmark accepted by a scaled source")
	}
}

func TestLabOverScaledSource(t *testing.T) {
	cfg := tinyConfig()
	src, err := mcbench.Suite("scaled:12:5")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Source = src
	cfg.PopLimit = 30
	l := mcbench.NewLab(cfg)
	if got := len(l.Benchmarks()); got != 12 {
		t.Fatalf("%d benchmarks", got)
	}
	if l.Suite() != src {
		t.Error("Lab.Suite() is not the configured source")
	}
	if got := l.Population(2).Size(); got != 30 {
		t.Fatalf("population %d, want PopLimit 30", got)
	}
	// A lab's source is fixed by its config; WithSuite is rejected.
	if _, err := l.Simulate(apiCtx, []string{l.Benchmarks()[0]},
		mcbench.WithSuite(src)); err == nil {
		t.Error("Lab.Simulate accepted WithSuite")
	}
}

func TestSimulateSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	workload := []string{"mcf", "povray"}
	r, err := mcbench.Simulate(apiCtx, workload,
		mcbench.WithSampling(4000, 1000, 500),
		mcbench.WithTraceLen(20000))
	if err != nil {
		t.Fatal(err)
	}
	if r.Windows != 5 {
		t.Errorf("windows = %d, want 5 (20000/4000)", r.Windows)
	}
	if len(r.CIHalf) != 2 || len(r.CV) != 2 {
		t.Fatalf("CI/CV shape %d/%d, want 2/2", len(r.CIHalf), len(r.CV))
	}
	for i := range r.IPC {
		if r.IPC[i] <= 0 || r.IPC[i] > 4 {
			t.Errorf("IPC[%d] = %g implausible", i, r.IPC[i])
		}
		if r.CIHalf[i] <= 0 || r.CV[i] <= 0 {
			t.Errorf("core %d: CI %g cv %g, want positive", i, r.CIHalf[i], r.CV[i])
		}
	}
	// An exact run reports no interval.
	exact, err := mcbench.Simulate(apiCtx, workload, mcbench.WithTraceLen(4000))
	if err != nil {
		t.Fatal(err)
	}
	if exact.CIHalf != nil || exact.CV != nil || exact.Windows != 0 {
		t.Error("exact run carries sampling fields")
	}
	// Sweep agrees with Simulate on the same spec.
	swept, err := mcbench.Sweep(apiCtx, [][]string{workload},
		mcbench.WithSampling(4000, 1000, 500),
		mcbench.WithTraceLen(20000))
	if err != nil {
		t.Fatal(err)
	}
	for i := range swept[0].IPC {
		if swept[0].IPC[i] != r.IPC[i] || swept[0].CIHalf[i] != r.CIHalf[i] {
			t.Errorf("sweep core %d: %g±%g, Simulate %g±%g",
				i, swept[0].IPC[i], swept[0].CIHalf[i], r.IPC[i], r.CIHalf[i])
		}
	}
	// The bounded-warming dial changes the estimate but keeps the shape.
	warm, err := mcbench.Simulate(apiCtx, workload,
		mcbench.WithSampling(4000, 1000, 500),
		mcbench.WithSamplingWarm(1000),
		mcbench.WithTraceLen(20000))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Windows != r.Windows {
		t.Errorf("bounded warming changed the window count: %d vs %d", warm.Windows, r.Windows)
	}
}

func TestSimulateSampledValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []mcbench.Option
	}{
		{"badco engine", []mcbench.Option{
			mcbench.WithSampling(4000, 1000, 500),
			mcbench.WithSimulator(mcbench.BADCO)}},
		{"with warmup", []mcbench.Option{
			mcbench.WithSampling(4000, 1000, 500),
			mcbench.WithWarmup(100)}},
		{"overfull unit", []mcbench.Option{
			mcbench.WithSampling(1000, 800, 300)}},
		{"warm alone", []mcbench.Option{
			mcbench.WithSamplingWarm(1000)}},
		{"warm beyond gap", []mcbench.Option{
			mcbench.WithSampling(4000, 1000, 500),
			mcbench.WithSamplingWarm(2501)}},
	}
	for _, c := range cases {
		if _, err := mcbench.Simulate(apiCtx, []string{"mcf"}, c.opts...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLabSimulateSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg := tinyConfig()
	cfg.TraceLen = 20000
	lab := mcbench.NewLab(cfg)
	r, err := lab.Simulate(apiCtx, []string{"gcc", "soplex"},
		mcbench.WithSampling(5000, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if r.Windows != 4 || len(r.CIHalf) != 2 {
		t.Fatalf("windows %d CI len %d", r.Windows, len(r.CIHalf))
	}
	// The lab route and the package route agree on identical inputs.
	pkg, err := mcbench.Simulate(apiCtx, []string{"gcc", "soplex"},
		mcbench.WithSampling(5000, 1000, 1000),
		mcbench.WithTraceLen(20000))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.IPC {
		if r.IPC[i] != pkg.IPC[i] {
			t.Errorf("core %d: lab %g pkg %g", i, r.IPC[i], pkg.IPC[i])
		}
	}
}
