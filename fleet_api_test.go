package mcbench_test

// End-to-end test of the public distributed-lab surface: Serve hosts a
// coordinator and two joined workers in-process (the real Client-backed
// peer path, retries and all), a warm campaign shards across the fleet
// with zero duplicate sweeps, and the result fabric serves the tables
// from any node by content key.

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"mcbench"
)

// startFleetServer boots one fleet node; join empty makes it the
// coordinator. Each node gets its own cache directory — the fabric, not
// shared disk, is what must converge.
func startFleetServer(t *testing.T, cacheDir, join string) (*mcbench.Client, string) {
	t.Helper()
	cfg := mcbench.QuickConfig()
	cfg.TraceLen = 2000
	cfg.CacheDir = cacheDir
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- mcbench.Serve(ctx, cfg, mcbench.ServeOptions{
			Addr: "127.0.0.1:0", Workers: 2,
			Join: join, FleetHeartbeat: time.Second,
			OnReady: func(addr string) { ready <- addr },
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		cancel()
		t.Fatalf("Serve exited before ready: %v", err)
	case <-time.After(15 * time.Second):
		cancel()
		t.Fatal("server never became ready")
	}
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("drained fleet node returned %v, want nil", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("fleet node did not drain")
		}
	})
	c, err := mcbench.NewClient("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	return c, addr
}

func TestFleetPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweeps")
	}
	ctx := context.Background()
	coord, coordAddr := startFleetServer(t, t.TempDir(), "")
	workers := []*mcbench.Client{}
	for i := 0; i < 2; i++ {
		w, _ := startFleetServer(t, t.TempDir(), coordAddr)
		workers = append(workers, w)
	}

	// The coordinator sees both workers join; the workers report their
	// granted membership.
	deadline := time.Now().Add(15 * time.Second)
	for {
		h, err := coord.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Fleet != nil && h.Fleet.Role == "coordinator" && h.Fleet.Peers == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never saw 2 peers: %+v", h.Fleet)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, w := range workers {
		h, err := w.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Fleet == nil || h.Fleet.Role != "worker" || h.Fleet.Coordinator != coordAddr || h.Fleet.MemberID == "" {
			t.Errorf("worker fleet health %+v", h.Fleet)
		}
	}

	// A mixed-version join is rejected with 409 over the public client.
	bad := mcbench.FleetJoinRequest{Addr: "127.0.0.1:1", Source: "suite", TraceLen: 2000}
	bad.Build.Module, bad.Build.Version = "mcbench", "v9.9.9-mixed"
	if _, err := coord.FleetJoin(ctx, bad); err == nil {
		t.Error("mixed-version FleetJoin succeeded, want 409")
	} else {
		var ae *mcbench.APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict {
			t.Errorf("mixed-version FleetJoin error %v, want a 409 APIError", err)
		}
	}

	// A warm campaign shards across the fleet: the workers sweep, the
	// coordinator reads everything through the fabric.
	products := []mcbench.ProductRef{
		{Sim: "badco", Cores: 2, Policy: "LRU"},
		{Sim: "badco", Cores: 2, Policy: "DRRIP"},
	}
	st, err := coord.SubmitWarm(ctx, products)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Warmed != len(products) {
		t.Errorf("Warmed = %d, want %d", res.Warmed, len(products))
	}
	h, err := coord.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sweeps.Badco != 0 || h.Sweeps.Detailed != 0 {
		t.Errorf("coordinator sweeps %+v, want zero — the fleet should have computed everything", h.Sweeps)
	}
	var workerSweeps int64
	for _, w := range workers {
		wh, err := w.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		workerSweeps += wh.Sweeps.Badco
	}
	if workerSweeps != int64(len(products)) {
		t.Errorf("workers ran %d badco sweeps, want exactly %d fleet-wide", workerSweeps, len(products))
	}

	// The result fabric: every product is fetchable from the coordinator
	// by content key, raw bytes with the integrity footer.
	entries, err := coord.Cache(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(products) {
		t.Fatalf("coordinator cache has %d entries, want %d", len(entries), len(products))
	}
	for _, e := range entries {
		if e.Corrupt {
			t.Errorf("cache entry %q corrupt", e.Key)
			continue
		}
		data, ok, err := coord.CacheGet(ctx, e.Key)
		if err != nil || !ok || len(data) == 0 {
			t.Errorf("CacheGet(%q) = %d bytes, ok=%v, err=%v", e.Key, len(data), ok, err)
		}
		if !strings.Contains(string(data), "mcbench-crc32:") {
			t.Errorf("CacheGet(%q) bytes lack the integrity footer", e.Key)
		}
	}
	// Misses are a plain ok=false, not an error.
	if _, ok, err := coord.CacheGet(ctx, "no-such-key"); ok || err != nil {
		t.Errorf("CacheGet(absent) = ok=%v err=%v, want plain miss", ok, err)
	}

	// Fleet-wide telemetry: the coordinator scrapes both workers through
	// the Client-backed peer path and aggregates the sweeps it just
	// refused to run itself.
	fm, err := coord.FleetMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fm.WorkersScraped != 2 || fm.WorkersFailed != 0 {
		t.Fatalf("fleet metrics scraped %d / failed %d, want 2 / 0: %+v", fm.WorkersScraped, fm.WorkersFailed, fm)
	}
	if int(fm.TotalSweeps) != len(products) {
		t.Errorf("fleet TotalSweeps = %.0f, want %d", fm.TotalSweeps, len(products))
	}
	for _, wm := range fm.Workers {
		if wm.ID == "" || wm.Addr == "" || wm.Error != "" {
			t.Errorf("worker metrics row %+v", wm)
		}
		if wm.UptimeSeconds <= 0 {
			t.Errorf("worker %s uptime %.3fs, want > 0", wm.ID, wm.UptimeSeconds)
		}
	}

	// Each worker's own /metrics agrees with its /healthz sweep count,
	// and /fleet/metrics on a non-coordinator is a plain 404.
	var metricSweeps float64
	for _, w := range workers {
		snap, err := w.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		metricSweeps += snap.Counter("mcbench_sweeps_total")
		if up := snap.Gauge("mcbench_uptime_seconds"); up <= 0 {
			t.Errorf("worker uptime gauge %.3f, want > 0", up)
		}
	}
	if int(metricSweeps) != len(products) {
		t.Errorf("workers' /metrics report %.0f sweeps, want %d", metricSweeps, len(products))
	}
	if _, err := workers[0].FleetMetrics(ctx); !mcbench.IsNotFound(err) {
		t.Errorf("FleetMetrics on a worker = %v, want a 404 not-found", err)
	}
}
