package mcbench

import (
	"context"
	"fmt"

	"mcbench/internal/badco"
	"mcbench/internal/bench"
	"mcbench/internal/cache"
	"mcbench/internal/multicore"
	"mcbench/internal/trace"
)

// Engine selects the simulator behind Simulate and Sweep.
type Engine int

const (
	// Detailed is the cycle-level out-of-order core model (the Zesto
	// role in the paper): accurate, slow.
	Detailed Engine = iota
	// BADCO is the behavioural approximate core model: each benchmark
	// is reduced to a model calibrated by two detailed runs, then
	// simulated an order of magnitude faster.
	BADCO
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case Detailed:
		return "detailed"
	case BADCO:
		return "badco"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Policy names an LLC replacement policy. The constants below cover the
// paper's case study (LRU, RND, FIFO, DIP, DRRIP) and the extension
// policies (SRRIP, PLRU, SHiP).
type Policy = cache.PolicyName

// The available replacement policies.
const (
	LRU   = cache.LRU
	RND   = cache.Random
	FIFO  = cache.FIFO
	DIP   = cache.DIP
	DRRIP = cache.DRRIP
	SRRIP = cache.SRRIP
	PLRU  = cache.PLRU
	SHiP  = cache.SHIP
)

// Policies returns the paper's five case-study policies in paper order.
func Policies() []Policy { return cache.PaperPolicies() }

// Result is the outcome of simulating one multiprogrammed workload.
type Result struct {
	// Workload is the benchmark co-schedule, one name per core.
	Workload []string
	Policy   Policy
	Engine   Engine
	// IPC per core, measured on the first Instructions µops of each
	// thread (the paper's methodology).
	IPC []float64
	// Cycles per core at which the quota was reached.
	Cycles []uint64
	// Instructions is the per-thread quota.
	Instructions uint64
	// CIHalf, CV and Windows are populated only by sampled runs
	// (WithSampling): the per-core 95% confidence half-width and
	// coefficient of variation of the per-window IPCs, and the number
	// of detailed windows measured. Exact runs leave CIHalf and CV nil
	// and Windows 0.
	CIHalf  []float64
	CV      []float64
	Windows int
}

// options collects the functional options of Simulate and Sweep.
type options struct {
	policy   Policy
	engine   Engine
	quota    uint64
	warmup   uint64
	traceLen int
	cores    int
	suite    Source
	fixedLen bool // WithTraceLen given (Lab.Simulate rejects it)
	sampling multicore.SamplingSpec
}

// Option configures Simulate and Sweep.
type Option func(*options)

// WithPolicy selects the LLC replacement policy (default LRU).
func WithPolicy(p Policy) Option { return func(o *options) { o.policy = p } }

// WithSimulator selects the simulation engine (default Detailed).
func WithSimulator(e Engine) Option { return func(o *options) { o.engine = e } }

// WithQuota sets the per-thread instruction quota (default: one trace
// length per thread).
func WithQuota(q uint64) Option { return func(o *options) { o.quota = q } }

// WithWarmup runs each thread for n committed µops before the
// measurement window opens (default 0: measure from reset). Caches,
// predictors and prefetchers warm during the prefix; IPC and cycles
// cover only the quota µops beyond it. The warmed machine state is
// snapshotted through the checkpoint layer, so sweeping several
// policies over one workload pays the warmup once (see
// multicore.SweepPoliciesDetailed and experiments.Config.Warmup).
func WithWarmup(n uint64) Option { return func(o *options) { o.warmup = n } }

// WithTraceLen sets the per-benchmark trace length in µops (default
// mcbench.DefaultTraceLen). Shorter traces simulate faster at lower
// fidelity.
func WithTraceLen(n int) Option {
	return func(o *options) {
		o.traceLen = n
		o.fixedLen = true
	}
}

// WithCores pins the machine's core count. A single-benchmark workload
// is replicated onto all n cores (a homogeneous workload, e.g. mcf x 4);
// a multi-benchmark workload must already have exactly n threads.
func WithCores(n int) Option { return func(o *options) { o.cores = n } }

// WithSuite selects the benchmark source workload names resolve
// through (default: the shared fixed suite). Traces memoize inside the
// source, so repeated calls against one source never regenerate a
// trace it already holds:
//
//	src, _ := mcbench.Suite("scaled:64:7")
//	r, err := mcbench.Simulate(ctx, []string{"high-005", "low-000"},
//	    mcbench.WithSuite(src))
//
// A nil src means the default.
func WithSuite(src Source) Option { return func(o *options) { o.suite = src } }

// DefaultTraceLen is the default per-benchmark trace length.
const DefaultTraceLen = trace.DefaultTraceLen

func buildOptions(opts []Option) options {
	o := options{policy: LRU, engine: Detailed, traceLen: DefaultTraceLen}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// effectiveQuota resolves the per-thread measurement quota: WithQuota
// when given, one trace length otherwise (the drivers' default).
func (o options) effectiveQuota() uint64 {
	if o.quota != 0 {
		return o.quota
	}
	return uint64(o.traceLen)
}

// source resolves the configured benchmark source.
func (o options) source() Source {
	if o.suite != nil {
		return o.suite
	}
	return defaultSource()
}

// resolveWorkload applies WithCores to the named workload.
func resolveWorkload(workload []string, cores int) ([]string, error) {
	if len(workload) == 0 {
		return nil, fmt.Errorf("mcbench: empty workload")
	}
	if cores <= 0 || cores == len(workload) {
		return workload, nil
	}
	if len(workload) == 1 {
		w := make([]string, cores)
		for i := range w {
			w[i] = workload[0]
		}
		return w, nil
	}
	return nil, fmt.Errorf("mcbench: workload has %d threads but WithCores(%d) was given", len(workload), cores)
}

// validate checks the options against the workload and returns the
// resolved thread list.
func (o options) validate(workload []string) ([]string, error) {
	if o.traceLen <= 0 {
		return nil, fmt.Errorf("mcbench: non-positive trace length %d", o.traceLen)
	}
	if _, err := cache.NewPolicy(o.policy, 0); err != nil {
		return nil, err
	}
	if o.engine != Detailed && o.engine != BADCO {
		return nil, fmt.Errorf("mcbench: unknown engine %v", o.engine)
	}
	// The quota defaults to one trace length per thread. A warmup beyond
	// it almost always means swapped arguments, so it is rejected here
	// rather than silently accepted as a run that mostly discards work.
	if q := o.effectiveQuota(); o.warmup > q {
		return nil, fmt.Errorf("mcbench: warmup %d exceeds the instruction quota %d", o.warmup, q)
	}
	if o.sampling.Enabled() || o.sampling != (multicore.SamplingSpec{}) {
		if err := o.sampling.Validate(); err != nil {
			return nil, fmt.Errorf("mcbench: %w", err)
		}
		if o.engine != Detailed {
			return nil, fmt.Errorf("mcbench: WithSampling requires the Detailed engine (BADCO is already fast; sample the slow simulator)")
		}
		if o.warmup > 0 {
			return nil, fmt.Errorf("mcbench: WithSampling and WithWarmup are mutually exclusive (the sampled run owns its warmup structure; see WithSampling's warmup argument)")
		}
	}
	return resolveWorkload(workload, o.cores)
}

// convert maps a multicore result into the public Result.
func convert(r multicore.Result, engine Engine) *Result {
	return &Result{
		Workload:     append([]string(nil), r.Workload...),
		Policy:       r.Policy,
		Engine:       engine,
		IPC:          r.IPC,
		Cycles:       r.Cycles,
		Instructions: r.Instructions,
	}
}

// Simulate runs one multiprogrammed workload — one benchmark name per
// core — under the configured policy and engine, and returns the
// per-thread IPCs. The context cancels the simulation promptly:
//
//	r, err := mcbench.Simulate(ctx, []string{"mcf", "povray"},
//	    mcbench.WithPolicy(mcbench.DRRIP),
//	    mcbench.WithSimulator(mcbench.BADCO),
//	    mcbench.WithTraceLen(20000))
func Simulate(ctx context.Context, workload []string, opts ...Option) (*Result, error) {
	o := buildOptions(opts)
	w, err := o.validate(workload)
	if err != nil {
		return nil, err
	}
	src := o.source()
	names, err := bench.CheckNames(src, [][]string{w})
	if err != nil {
		return nil, err
	}
	prov := bench.At(src, o.traceLen)
	switch o.engine {
	case BADCO:
		models, err := multicore.BuildModels(ctx, prov, names, badco.DefaultBuildConfig())
		if err != nil {
			return nil, err
		}
		r, err := multicore.ApproximateWithWarmup(ctx, multicore.Workload(w), models, o.policy, o.warmup, o.quota)
		if err != nil {
			return nil, err
		}
		return convert(r, BADCO), nil
	default:
		if o.sampling.Enabled() {
			r, err := multicore.DetailedSampled(ctx, multicore.Workload(w), prov, o.policy, o.sampling, o.quota)
			if err != nil {
				return nil, err
			}
			return convertSampled(r), nil
		}
		r, err := multicore.DetailedWithWarmup(ctx, multicore.Workload(w), prov, o.policy, o.warmup, o.quota)
		if err != nil {
			return nil, err
		}
		return convert(r, Detailed), nil
	}
}

// Sweep simulates many workloads under one configuration, in parallel
// across the process-wide simulation budget. Traces resolve lazily
// through the (shared) source and BADCO models are built once per
// distinct benchmark. The returned slice is indexed like workloads.
func Sweep(ctx context.Context, workloads [][]string, opts ...Option) ([]*Result, error) {
	o := buildOptions(opts)
	ws := make([]multicore.Workload, len(workloads))
	for i, w := range workloads {
		resolved, err := o.validate(w)
		if err != nil {
			return nil, err
		}
		ws[i] = multicore.Workload(resolved)
	}
	all := make([][]string, len(ws))
	for i, w := range ws {
		all[i] = []string(w)
	}
	src := o.source()
	names, err := bench.CheckNames(src, all)
	if err != nil {
		return nil, err
	}
	prov := bench.At(src, o.traceLen)
	var results []multicore.Result
	switch o.engine {
	case BADCO:
		models, err := multicore.BuildModels(ctx, prov, names, badco.DefaultBuildConfig())
		if err != nil {
			return nil, err
		}
		if o.warmup > 0 {
			results, err = sweepWarmed(ctx, ws, func(ctx context.Context, w multicore.Workload) (multicore.Result, error) {
				return multicore.ApproximateWithWarmup(ctx, w, models, o.policy, o.warmup, o.quota)
			})
		} else {
			results, err = multicore.SweepApproximate(ctx, ws, models, o.policy, o.quota)
		}
		if err != nil {
			return nil, err
		}
	default:
		if o.sampling.Enabled() {
			sampled, err := multicore.SweepDetailedSampled(ctx, ws, prov, o.policy, o.sampling, o.quota)
			if err != nil {
				return nil, err
			}
			out := make([]*Result, len(sampled))
			for i, r := range sampled {
				out[i] = convertSampled(r)
			}
			return out, nil
		}
		if o.warmup > 0 {
			results, err = sweepWarmed(ctx, ws, func(ctx context.Context, w multicore.Workload) (multicore.Result, error) {
				return multicore.DetailedWithWarmup(ctx, w, prov, o.policy, o.warmup, o.quota)
			})
		} else {
			results, err = multicore.SweepDetailed(ctx, ws, prov, o.policy, o.quota)
		}
		if err != nil {
			return nil, err
		}
	}
	out := make([]*Result, len(results))
	for i, r := range results {
		out[i] = convert(r, o.engine)
	}
	return out, nil
}

// sweepWarmed runs the two-stage (warmup + measure) simulation per
// workload on the shared simulation budget, like the plain sweeps.
func sweepWarmed(ctx context.Context, ws []multicore.Workload, run func(context.Context, multicore.Workload) (multicore.Result, error)) ([]multicore.Result, error) {
	results := make([]multicore.Result, len(ws))
	errs := make([]error, len(ws))
	if err := multicore.RunBounded(ctx, len(ws), func(i int) {
		results[i], errs[i] = run(ctx, ws[i])
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
