package mcbench

import (
	"math/rand"

	"mcbench/internal/cluster"
	"mcbench/internal/sampling"
	"mcbench/internal/trace"
	"mcbench/internal/workload"
)

// Population is a concrete set of multiprogrammed workloads under study
// (each workload a multiset of benchmark indices into Benchmarks()).
type Population = workload.Population

// EnumerateWorkloads builds the full population of cores-sized multisets
// over the fixed 22-benchmark suite — e.g. 253 workloads for 2 cores,
// 12650 for 4. For other benchmark sources use EnumerateWorkloadsOver
// (or a Lab's Population, which also knows when to sample instead).
func EnumerateWorkloads(cores int) *Population {
	return workload.Enumerate(len(trace.SuiteNames()), cores)
}

// EnumerateWorkloadsOver builds the full population of cores-sized
// multisets over the given source's benchmarks. Mind the combinatorics:
// the population has C(B+cores-1, cores) members, which explodes for
// large scaled sources.
func EnumerateWorkloadsOver(src Source, cores int) *Population {
	return workload.Enumerate(len(src.Names()), cores)
}

// WorkloadNames expands a population over the fixed suite into
// benchmark-name workloads, ready for Sweep.
func WorkloadNames(p *Population) [][]string {
	return WorkloadNamesOver(p, trace.SuiteNames())
}

// WorkloadNamesOver expands a population into named workloads using an
// explicit benchmark name table (a Source's Names, index-aligned with
// the population).
func WorkloadNamesOver(p *Population, names []string) [][]string {
	out := make([][]string, len(p.Workloads))
	for i, w := range p.Workloads {
		out[i] = w.Names(names)
	}
	return out
}

// Sampler draws workload samples from a population; the four
// implementations mirror the paper's Section VI methods.
type Sampler = sampling.Sampler

// WorkloadStrataConfig parameterises workload stratification (the
// paper's WT and TSD).
type WorkloadStrataConfig = sampling.WorkloadStrataConfig

// NumClasses is the number of memory-intensity classes of the Table IV
// classification.
const NumClasses = sampling.NumClasses

// NewSimpleRandom samples workloads uniformly from a population of n.
func NewSimpleRandom(n int) Sampler { return sampling.NewSimpleRandom(n) }

// NewBalancedRandom samples uniformly while balancing per-benchmark
// occurrence counts (Section VI-B-1); it requires the full population.
func NewBalancedRandom(pop *Population) Sampler { return sampling.NewBalancedRandom(pop) }

// NewBenchmarkStrata stratifies workloads by their benchmark-class
// signature (Section VI-A). classes assigns each benchmark a class in
// [0, numClasses); Lab.Classes supplies the measured MPKI classes.
func NewBenchmarkStrata(pop *Population, classes []int, numClasses int) Sampler {
	return sampling.NewBenchmarkStrata(pop, classes, numClasses)
}

// DefaultWorkloadStrataConfig returns the paper's operating point
// (WT=50, TSD=0.001).
func DefaultWorkloadStrataConfig() WorkloadStrataConfig {
	return sampling.DefaultWorkloadStrataConfig()
}

// NewWorkloadStrata stratifies workloads by their fast-simulator d(w)
// values (Section VI-B-2, the paper's main proposal).
func NewWorkloadStrata(d []float64, cfg WorkloadStrataConfig) Sampler {
	return sampling.NewWorkloadStrata(d, cfg)
}

// NumStrata reports a stratified sampler's stratum count (1 for
// unstratified samplers).
func NumStrata(s Sampler) int { return sampling.NumStrata(s) }

// EmpiricalConfidence Monte-Carlos the degree of confidence that the
// weighted sample mean of values has the correct sign, over trials draws
// of w workloads.
func EmpiricalConfidence(rng *rand.Rand, values []float64, s Sampler, w, trials int) float64 {
	return sampling.EmpiricalConfidence(rng, values, s, w, trials)
}

// ModelConfidence is the analytic counterpart of EmpiricalConfidence for
// simple random sampling (equation 5 applied to the values' cv).
func ModelConfidence(values []float64, w int) float64 {
	return sampling.ModelConfidence(values, w)
}

// ---------------------------------------------------------------------------
// Cluster-based selection (the Section II-B survey methods).

// Clusters is a k-means / hierarchical clustering result.
type Clusters = cluster.Result

// NormalizeFeatures z-scores a feature matrix column-wise.
func NormalizeFeatures(points [][]float64) [][]float64 { return cluster.Normalize(points) }

// BestK clusters points with k-means for k in [kMin, kMax] and returns
// the silhouette-best result.
func BestK(rng *rand.Rand, points [][]float64, kMin, kMax int) (*Clusters, error) {
	return cluster.BestK(rng, points, kMin, kMax)
}

// SortedAssign relabels cluster assignments canonically (clusters
// numbered by first appearance).
func SortedAssign(r *Clusters) []int { return cluster.SortedAssign(r) }

// NewClusterBenchStrata derives benchmark classes by k-means on the
// feature matrix (Vandierendonck & Seznec style) and returns benchmark
// stratification over them, plus the class assignment.
func NewClusterBenchStrata(rng *rand.Rand, pop *Population, benchFeatures [][]float64, k int) (Sampler, []int, error) {
	return sampling.NewClusterBenchStrata(rng, pop, benchFeatures, k)
}

// WorkloadFeatures lifts per-benchmark features to per-workload features
// (the input to representative workload clustering).
func WorkloadFeatures(pop *Population, benchFeatures [][]float64) ([][]float64, error) {
	return sampling.WorkloadFeatures(pop, benchFeatures)
}

// NewRepresentative clusters the workload feature matrix and samples
// k-means medoids weighted by cluster size (Van Biesbrouck, Eeckhout &
// Calder style).
func NewRepresentative(features [][]float64, maxIter int) Sampler {
	return sampling.NewRepresentative(features, maxIter)
}
