package mcbench

import (
	"mcbench/internal/metrics"
	"mcbench/internal/stats"
)

// Metric selects a throughput metric over a workload's per-thread IPCs.
type Metric = metrics.Metric

// The paper's three throughput metrics plus the geometric-mean
// extension. IPCT is the arithmetic mean of raw IPCs; WSU/HSU/GMSU are
// the arithmetic/harmonic/geometric means of per-thread speedups against
// the benchmark-alone reference.
const (
	IPCT = metrics.IPCT
	WSU  = metrics.WSU
	HSU  = metrics.HSU
	GMSU = metrics.GMSU
)

// Metrics returns the paper's three metrics in presentation order.
func Metrics() []Metric { return metrics.All() }

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 { return stats.Mean(xs) }

// CoefVar returns the coefficient of variation sigma/mu of the values —
// the paper's central statistic over the per-workload differences d(w).
func CoefVar(xs []float64) float64 { return stats.CoefVar(xs) }

// InvCoefVar returns 1/cv, the decisiveness measure of Figures 4 and 5.
func InvCoefVar(xs []float64) float64 { return stats.InvCoefVar(xs) }

// Confidence returns the analytic degree of confidence (equation 5) that
// the mean difference has the sign of its expectation, for a random
// sample of w workloads whose d(w) has the given cv.
func Confidence(cv float64, w int) float64 { return stats.Confidence(cv, w) }

// RequiredSampleSize returns the paper's W = 8*cv^2 rule: the random
// sample size needed for ~97.7% confidence.
func RequiredSampleSize(cv float64) int { return stats.RequiredSampleSize(cv) }
