package mcbench_test

// Unit tests of the client's resilience layer over httptest doubles:
// retry-until-success on transient failures, Retry-After honoured,
// typed APIError through errors.As, the IsNotFound helper, and the
// Events follower resuming from its cursor across dropped polls.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mcbench"
)

// flakyHandler answers failures until `fails` requests have been seen,
// then delegates.
type flakyHandler struct {
	calls  atomic.Int64
	fails  int64
	status int // 0 = close the connection instead of answering
	next   http.Handler
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.calls.Add(1) <= h.fails {
		if h.status == 0 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close() // the client sees a dropped connection
			return
		}
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(h.status)
		fmt.Fprintf(w, `{"error":"transient"}`)
		return
	}
	h.next.ServeHTTP(w, r)
}

// healthOK answers a minimal healthz payload.
var healthOK = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"ok":true,"workers":2}`)
})

// fastClient returns a client with sub-millisecond backoff so retry
// tests run instantly.
func fastClient(t *testing.T, url string, opts ...mcbench.ClientOptions) *mcbench.Client {
	t.Helper()
	o := mcbench.ClientOptions{BaseDelay: 100 * time.Microsecond}
	if len(opts) > 0 {
		o = opts[0]
		if o.BaseDelay == 0 {
			o.BaseDelay = 100 * time.Microsecond
		}
	}
	c, err := mcbench.NewClient(url, o)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClientRetriesConnectionErrors pins the core retry loop: dropped
// connections retry with backoff until the server answers.
func TestClientRetriesConnectionErrors(t *testing.T) {
	h := &flakyHandler{fails: 3, next: healthOK}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := fastClient(t, ts.URL)
	hl, err := c.Health(t.Context())
	if err != nil {
		t.Fatalf("Health through 3 dropped connections: %v", err)
	}
	if !hl.OK || h.calls.Load() != 4 {
		t.Errorf("ok=%v calls=%d, want true, 4", hl.OK, h.calls.Load())
	}
}

// TestClientRetries503 pins the submit path: 503 means
// rejected-before-enqueue, so even POSTs retry (honouring Retry-After).
func TestClientRetries503(t *testing.T) {
	h := &flakyHandler{
		fails:  2,
		status: http.StatusServiceUnavailable,
		next: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(mcbench.JobStatus{ID: "j000001", State: mcbench.JobQueued})
		}),
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := fastClient(t, ts.URL)
	st, err := c.SubmitExperiment(t.Context(), "fig6", 0)
	if err != nil {
		t.Fatalf("submit through 2 503s: %v", err)
	}
	if st.ID != "j000001" || h.calls.Load() != 3 {
		t.Errorf("id=%s calls=%d", st.ID, h.calls.Load())
	}
}

// TestClientDoesNotRetryPOSTOn502 pins the idempotency line: gateway
// errors (which may mean the request reached the server) retry GETs
// only, never POSTs.
func TestClientDoesNotRetryPOSTOn502(t *testing.T) {
	h := &flakyHandler{fails: 1 << 30, status: http.StatusBadGateway, next: healthOK}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := fastClient(t, ts.URL)
	_, err := c.SubmitExperiment(t.Context(), "fig6", 0)
	if err == nil {
		t.Fatal("502 POST succeeded?")
	}
	if h.calls.Load() != 1 {
		t.Errorf("POST retried %d times on 502", h.calls.Load()-1)
	}
	// The same failure on a GET does retry.
	h.calls.Store(0)
	h.fails = 2
	if _, err := c.Health(t.Context()); err != nil {
		t.Fatalf("Health through 2 502s: %v", err)
	}
	if h.calls.Load() != 3 {
		t.Errorf("GET calls=%d, want 3", h.calls.Load())
	}
}

// TestClientRetriesAreBounded pins that retries stop at MaxRetries and
// the last error surfaces, typed.
func TestClientRetriesAreBounded(t *testing.T) {
	h := &flakyHandler{fails: 1 << 30, status: http.StatusServiceUnavailable, next: healthOK}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := fastClient(t, ts.URL, mcbench.ClientOptions{MaxRetries: 2, BaseDelay: 100 * time.Microsecond})
	_, err := c.Health(t.Context())
	if err == nil {
		t.Fatal("bounded retries succeeded against an always-503 server")
	}
	if h.calls.Load() != 3 { // 1 attempt + 2 retries
		t.Errorf("calls=%d, want 3", h.calls.Load())
	}
	var ae *mcbench.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("final error not a typed 503: %v", err)
	}
}

// TestClientRetriesDisabled pins MaxRetries < 0: one attempt, no more.
func TestClientRetriesDisabled(t *testing.T) {
	h := &flakyHandler{fails: 1 << 30, next: healthOK}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := fastClient(t, ts.URL, mcbench.ClientOptions{MaxRetries: -1})
	if _, err := c.Health(t.Context()); err == nil {
		t.Fatal("disabled retries succeeded")
	}
	if h.calls.Load() != 1 {
		t.Errorf("calls=%d, want 1", h.calls.Load())
	}
}

// TestAPIErrorTyped pins the exported error contract: non-2xx responses
// surface as *APIError with the status inspectable, and IsNotFound
// recognises 404s.
func TestAPIErrorTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintf(w, `{"error":"serve: no job \"j9\""}`)
	}))
	defer ts.Close()
	c := fastClient(t, ts.URL)
	_, err := c.Job(t.Context(), "j9")
	if err == nil {
		t.Fatal("404 did not error")
	}
	var ae *mcbench.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error not an *APIError: %T %v", err, err)
	}
	if ae.StatusCode != http.StatusNotFound || ae.Message != `serve: no job "j9"` {
		t.Errorf("APIError %+v", ae)
	}
	if !mcbench.IsNotFound(err) {
		t.Error("IsNotFound missed a 404")
	}
	if mcbench.IsNotFound(errors.New("other")) {
		t.Error("IsNotFound matched a non-API error")
	}
}

// TestEventsFollowerReconnects pins the follower: polls that die
// mid-follow are retried from the last-seen cursor, so the caller sees
// every event exactly once.
func TestEventsFollowerReconnects(t *testing.T) {
	evs := []mcbench.JobEvent{
		{Seq: 1, Type: "queued"}, {Seq: 2, Type: "started"}, {Seq: 3, Type: "done"},
	}
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		// Drop every other poll: 1st (cursor 0) ok, 2nd dropped, ...
		if n%2 == 0 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close()
			return
		}
		after := 0
		fmt.Sscanf(r.URL.Query().Get("after"), "%d", &after)
		page := struct {
			State  mcbench.JobState   `json:"state"`
			Events []mcbench.JobEvent `json:"events"`
		}{State: mcbench.JobRunning}
		// One event per successful poll, so the follow spans several
		// polls and therefore several dropped connections.
		if after < len(evs) {
			page.Events = evs[after : after+1]
		}
		if after+1 >= len(evs) {
			page.State = mcbench.JobDone
		}
		json.NewEncoder(w).Encode(page)
	}))
	defer ts.Close()
	c := fastClient(t, ts.URL)
	var seen []int
	state, err := c.Events(t.Context(), "j1", 0, func(ev mcbench.JobEvent) bool {
		seen = append(seen, ev.Seq)
		return true
	})
	if err != nil {
		t.Fatalf("Events through dropped polls: %v", err)
	}
	if state != mcbench.JobDone {
		t.Errorf("final state %s", state)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 2 || seen[2] != 3 {
		t.Errorf("events seen %v, want [1 2 3] exactly once each", seen)
	}
}

// TestClientStatsVisibility pins Client.Stats: a 503+Retry-After storm
// is visible as attempts, retries and honoured backpressure, a
// non-retryable failure counts once, and the latency quantiles are fed
// by every attempt.
func TestClientStatsVisibility(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/jobs/nope" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"no such job"}`)
			return
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"busy"}`)
			return
		}
		healthOK.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := fastClient(t, ts.URL)

	if st := c.Stats(); st.Requests != 0 || st.Retries != 0 || st.Failures != 0 {
		t.Fatalf("fresh client stats %+v, want zeros", st)
	}
	if _, err := c.Health(t.Context()); err != nil {
		t.Fatalf("Health through 2 503s: %v", err)
	}
	st := c.Stats()
	if st.Requests != 3 || st.Retries != 2 || st.RetryAfterHonored != 2 || st.Failures != 0 {
		t.Errorf("after 503 storm: %+v, want 3 requests / 2 retries / 2 honoured / 0 failures", st)
	}
	if st.LatencyP50 <= 0 || st.LatencyP95 < st.LatencyP50 {
		t.Errorf("latency quantiles p50=%g p95=%g, want positive and ordered", st.LatencyP50, st.LatencyP95)
	}

	// A 404 is non-retryable: one more attempt, one failure, no retry.
	if _, err := c.Job(t.Context(), "nope"); !mcbench.IsNotFound(err) {
		t.Fatalf("Job(nope) = %v, want 404", err)
	}
	st = c.Stats()
	if st.Requests != 4 || st.Retries != 2 || st.Failures != 1 {
		t.Errorf("after 404: %+v, want 4 requests / 2 retries / 1 failure", st)
	}
}
