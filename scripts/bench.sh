#!/bin/sh
# bench.sh — measure the simulator microbenchmarks and emit a JSON report.
#
# Usage:
#   scripts/bench.sh [-baseline FILE | -interleave TESTBIN] [-out BENCH.json] [-reps N]
#
# Runs the per-µop simulator benchmarks (BenchmarkDetailedSimulator2Core,
# BenchmarkBadcoSimulator2Core, BenchmarkBadcoSimulator8Core, the
# BenchmarkPolicySweep{SharedWarmup,ColdWarmup} pair and the
# Benchmark{Exact,Sampled}Detailed2Core10x sampled-simulation pair, each
# with -benchtime 3x, and BenchmarkPopulationSweep with -benchtime 1x),
# REPS times each, and reports the MINIMUM ns/op per benchmark — the
# standard way to measure on a noisy shared host, since noise only ever
# adds time. Allocations per op (from -benchmem) come from the last run.
#
# It then runs the sampling-accuracy experiment once (full scale,
# 1M-µop traces) and records its speed/accuracy frontier — per sampling
# spec, the mean IPC error vs a warmed exact run, the CI coverage and
# the wall-clock speedup over cold full runs — alongside the mix timing
# A/B above.
#
# Two more sections ride along:
#   telemetry_overhead  the instrumented simulator benchmarks rerun with
#                       MCBENCH_TELEMETRY=off in the same time window;
#                       per benchmark, min-vs-min overhead in percent
#                       (the budget is <= 1%).
#   BenchmarkFleetCampaign  the fleet coordinator's per-product
#                       orchestration cost over instant in-process
#                       workers (internal/fleet), reported with the
#                       other benchmarks.
#
# The raw `go test -bench` lines are appended to <out>.raw.txt. Two ways
# to compare against a baseline:
#   -baseline FILE     a previous raw file; speedups go into the report.
#   -interleave BIN    a prebuilt baseline test binary (go test -c on the
#                      old tree). Its runs are interleaved A/B with the
#                      current tree's in the same time window, so slow
#                      drift in the host's background load cannot bias
#                      the comparison. Raw lines land in <out>.base.raw.txt.
set -eu

cd "$(dirname "$0")/.."

BASELINE=""
INTERLEAVE=""
OUT="BENCH_10.json"
REPS=5
while [ $# -gt 0 ]; do
	case "$1" in
	-baseline) BASELINE="$2"; shift 2 ;;
	-interleave) INTERLEAVE="$2"; shift 2 ;;
	-out) OUT="$2"; shift 2 ;;
	-reps) REPS="$2"; shift 2 ;;
	*) echo "usage: $0 [-baseline FILE | -interleave TESTBIN] [-out FILE] [-reps N]" >&2; exit 2 ;;
	esac
done

RAW="$OUT.raw.txt"
: >"$RAW"
SIMS='BenchmarkDetailedSimulator2Core$|BenchmarkBadcoSimulator2Core$|BenchmarkBadcoSimulator8Core$|BenchmarkPolicySweepSharedWarmup$|BenchmarkPolicySweepColdWarmup$|BenchmarkExactDetailed2Core10x$|BenchmarkSampledDetailed2Core10x$'
POP='BenchmarkPopulationSweep$'
# The span-instrumented subset of SIMS: these run a second pass with
# telemetry disabled for the overhead A/B (the sweep pair carries no
# span, so it would only dilute the measurement).
TELEM='BenchmarkDetailedSimulator2Core$|BenchmarkBadcoSimulator2Core$|BenchmarkBadcoSimulator8Core$|BenchmarkExactDetailed2Core10x$|BenchmarkSampledDetailed2Core10x$'
FLEETB='BenchmarkFleetCampaign$'

if [ -n "$INTERLEAVE" ]; then
	BASELINE="$OUT.base.raw.txt"
	: >"$BASELINE"
fi

# Current tree as a prebuilt binary too, so A and B pay identical costs.
# default.pgo (regenerable with scripts/pgo.sh) feeds profile-guided
# optimization when present; go test does not pick it up automatically
# for library packages, so pass it explicitly.
PGO=""
[ -f default.pgo ] && PGO="-pgo=default.pgo"
BIN=$(mktemp /tmp/mcbench.XXXXXX.test)
go test $PGO -c -o "$BIN" .
FLEETBIN=$(mktemp /tmp/mcbench.XXXXXX.fleet.test)
go test -c -o "$FLEETBIN" ./internal/fleet
trap 'rm -f "$BIN" "$FLEETBIN"' EXIT

OFFRAW="$OUT.telemetry-off.raw.txt"
: >"$OFFRAW"

START=$(date +%s)
i=0
while [ "$i" -lt "$REPS" ]; do
	if [ -n "$INTERLEAVE" ]; then
		"$INTERLEAVE" -test.run '^$' -test.bench "$SIMS" -test.benchtime 3x -test.benchmem | grep '^Benchmark' >>"$BASELINE"
	fi
	"$BIN" -test.run '^$' -test.bench "$SIMS" -test.benchtime 3x -test.benchmem | grep '^Benchmark' >>"$RAW"
	if [ -n "$INTERLEAVE" ]; then
		"$INTERLEAVE" -test.run '^$' -test.bench "$POP" -test.benchtime 1x -test.benchmem | grep '^Benchmark' >>"$BASELINE"
	fi
	"$BIN" -test.run '^$' -test.bench "$POP" -test.benchtime 1x -test.benchmem | grep '^Benchmark' >>"$RAW"
	# Telemetry A/B: the same binary, same time window, recording stripped
	# by the env gate — the difference bounds the instrumentation cost.
	MCBENCH_TELEMETRY=off "$BIN" -test.run '^$' -test.bench "$TELEM" -test.benchtime 3x -test.benchmem | grep '^Benchmark' >>"$OFFRAW"
	"$FLEETBIN" -test.run '^$' -test.bench "$FLEETB" -test.benchtime 100x -test.benchmem | grep '^Benchmark' >>"$RAW"
	i=$((i + 1))
done
END=$(date +%s)

# summarize RAWFILE LABEL -> "name min_ns allocs" lines on stdout.
summarize() {
	awk '{
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = 0; allocs = -1
		for (f = 3; f < NF; f++) {
			if ($(f + 1) == "ns/op") ns = $f
			if ($(f + 1) == "allocs/op") allocs = $f
		}
		if (ns == 0) next
		if (!(name in min) || ns < min[name]) min[name] = ns
		al[name] = allocs
	}
	END { for (n in min) printf "%s %.0f %.0f\n", n, min[n], al[n] }' "$1" | sort
}

summarize "$RAW" >"$RAW.sum"
summarize "$OFFRAW" >"$RAW.off.sum"
if [ -n "$BASELINE" ]; then
	summarize "$BASELINE" >"$RAW.base.sum"
fi

# Telemetry overhead per instrumented benchmark: min-vs-min of the
# enabled (RAW) and MCBENCH_TELEMETRY=off (OFFRAW) passes.
TELEM_JSON=$(mktemp /tmp/mcbench.XXXXXX.telem)
while read -r name off _; do
	on=$(awk -v n="$name" '$1 == n { print $2 }' "$RAW.sum")
	[ -n "$on" ] || continue
	pct=$(awk -v on="$on" -v off="$off" 'BEGIN { printf "%.2f", (on - off) * 100 / off }')
	printf '    {"name": "%s", "on_ns_per_op": %s, "off_ns_per_op": %s, "overhead_pct": %s}\n' \
		"$name" "$on" "$off" "$pct"
done <"$RAW.off.sum" >"$TELEM_JSON"

# Shared-warmup vs per-policy-warmup policy sweep, same binary and time
# window: the checkpointed-sweep speedup. Both run sequentially, so the
# ratio is pure per-op cost, immune to core-count differences.
SWEEP_SPEEDUP=""
shared=$(awk '$1 == "BenchmarkPolicySweepSharedWarmup" { print $2 }' "$RAW.sum")
cold=$(awk '$1 == "BenchmarkPolicySweepColdWarmup" { print $2 }' "$RAW.sum")
if [ -n "$shared" ] && [ -n "$cold" ]; then
	SWEEP_SPEEDUP=$(awk -v c="$cold" -v s="$shared" 'BEGIN { printf "%.2f", c / s }')
fi

# Sampled vs exact detailed simulation on the 10×-length mix, same
# binary, same traces: the cycle-proportional cost a cold low-IPC run
# pays and sampling avoids. (Accuracy on heterogeneous mixes is the
# estimator's weak spot — see the frontier below and the README.)
SAMPLED_SPEEDUP=""
exact10=$(awk '$1 == "BenchmarkExactDetailed2Core10x" { print $2 }' "$RAW.sum")
sampled10=$(awk '$1 == "BenchmarkSampledDetailed2Core10x" { print $2 }' "$RAW.sum")
if [ -n "$exact10" ] && [ -n "$sampled10" ]; then
	SAMPLED_SPEEDUP=$(awk -v e="$exact10" -v s="$sampled10" 'BEGIN { printf "%.2f", e / s }')
fi

# The sampling-accuracy experiment: full campaign scale (1M-µop traces),
# singles ensemble, one row per sampling spec. Parsed into the report as
# the speed/accuracy frontier — the error side of the A/B above.
FRONTIER=$(mktemp /tmp/mcbench.XXXXXX.frontier)
MCB=$(mktemp /tmp/mcbench.XXXXXX.cli)
trap 'rm -f "$BIN" "$FLEETBIN" "$MCB" "$FRONTIER" "$TELEM_JSON"' EXIT
go build $PGO -o "$MCB" ./cmd/mcbench
"$MCB" sampling-accuracy | awk '/^u[0-9]/ {
	sub(/%$/, "", $3); sub(/%$/, "", $4); sub(/x$/, "", $6)
	printf "    {\"spec\": \"%s\", \"windows\": %s, \"detailed_pct\": %s, \"mean_err_pct\": %s, \"ci_cover\": \"%s\", \"speedup_vs_cold\": %s}\n", \
		$1, $2, $3, $4, $5, $6
}' >"$FRONTIER"

{
	echo '{'
	echo '  "protocol": "min ns/op over '"$REPS"' runs (sim benchmarks: -benchtime 3x; population sweep: -benchtime 1x; fleet campaign: -benchtime 100x; fresh process per run), -benchmem",'
	echo '  "walltime_seconds": '$((END - START))','
	if [ -n "$SWEEP_SPEEDUP" ]; then
		echo '  "policy_sweep_shared_warmup_speedup": '"$SWEEP_SPEEDUP"','
	fi
	if [ -n "$SAMPLED_SPEEDUP" ]; then
		echo '  "sampled_vs_exact_speedup": '"$SAMPLED_SPEEDUP"','
	fi
	if [ -s "$TELEM_JSON" ]; then
		echo '  "telemetry_overhead_note": "instrumented simulator benchmarks vs the same binary with MCBENCH_TELEMETRY=off, min ns/op over the same reps in the same time window; budget <= 1% (negatives are host noise)",'
		echo '  "telemetry_overhead": ['
		sed '$!s/$/,/' "$TELEM_JSON"
		echo '  ],'
	fi
	if [ -s "$FRONTIER" ]; then
		echo '  "sampling_frontier_note": "singles ensemble on 1M-µop traces; error vs warmed exact run (steady-state referent), speedup vs cold full runs; f-suffixed spec bounds functional warming (speed dial, larger bias)",'
		echo '  "sampling_frontier": ['
		sed '$!s/$/,/' "$FRONTIER"
		echo '  ],'
	fi
	echo '  "benchmarks": ['
	first=1
	while read -r name ns allocs; do
		[ "$first" -eq 1 ] || echo ','
		first=0
		printf '    {"name": "%s", "ns_per_op": %s, "allocs_per_op": %s' "$name" "$ns" "$allocs"
		if [ -n "$BASELINE" ]; then
			base=$(awk -v n="$name" '$1 == n { print $2 }' "$RAW.base.sum")
			base_allocs=$(awk -v n="$name" '$1 == n { print $3 }' "$RAW.base.sum")
			if [ -n "$base" ]; then
				speedup=$(awk -v b="$base" -v n="$ns" 'BEGIN { printf "%.2f", b / n }')
				printf ', "baseline_ns_per_op": %s, "baseline_allocs_per_op": %s, "speedup": %s' \
					"$base" "$base_allocs" "$speedup"
			fi
		fi
		printf '}'
	done <"$RAW.sum"
	echo ''
	echo '  ]'
	echo '}'
} >"$OUT"

rm -f "$RAW.sum" "$RAW.base.sum" "$RAW.off.sum"
echo "wrote $OUT (raw samples in $RAW)"
