#!/bin/sh
# bench.sh — measure the simulator microbenchmarks and emit a JSON report.
#
# Usage:
#   scripts/bench.sh [-baseline FILE | -interleave TESTBIN] [-out BENCH.json] [-reps N]
#
# Runs the per-µop simulator benchmarks (BenchmarkDetailedSimulator2Core,
# BenchmarkBadcoSimulator2Core, BenchmarkBadcoSimulator8Core and the
# BenchmarkPolicySweep{SharedWarmup,ColdWarmup} pair, each with
# -benchtime 3x, and BenchmarkPopulationSweep with -benchtime 1x), REPS
# times each, and reports the MINIMUM ns/op per benchmark — the standard
# way to measure on a noisy shared host, since noise only ever adds time.
# Allocations per op (from -benchmem) come from the last run.
#
# The raw `go test -bench` lines are appended to <out>.raw.txt. Two ways
# to compare against a baseline:
#   -baseline FILE     a previous raw file; speedups go into the report.
#   -interleave BIN    a prebuilt baseline test binary (go test -c on the
#                      old tree). Its runs are interleaved A/B with the
#                      current tree's in the same time window, so slow
#                      drift in the host's background load cannot bias
#                      the comparison. Raw lines land in <out>.base.raw.txt.
set -eu

cd "$(dirname "$0")/.."

BASELINE=""
INTERLEAVE=""
OUT="BENCH_6.json"
REPS=5
while [ $# -gt 0 ]; do
	case "$1" in
	-baseline) BASELINE="$2"; shift 2 ;;
	-interleave) INTERLEAVE="$2"; shift 2 ;;
	-out) OUT="$2"; shift 2 ;;
	-reps) REPS="$2"; shift 2 ;;
	*) echo "usage: $0 [-baseline FILE | -interleave TESTBIN] [-out FILE] [-reps N]" >&2; exit 2 ;;
	esac
done

RAW="$OUT.raw.txt"
: >"$RAW"
SIMS='BenchmarkDetailedSimulator2Core$|BenchmarkBadcoSimulator2Core$|BenchmarkBadcoSimulator8Core$|BenchmarkPolicySweepSharedWarmup$|BenchmarkPolicySweepColdWarmup$'
POP='BenchmarkPopulationSweep$'

if [ -n "$INTERLEAVE" ]; then
	BASELINE="$OUT.base.raw.txt"
	: >"$BASELINE"
fi

# Current tree as a prebuilt binary too, so A and B pay identical costs.
# default.pgo (regenerable with scripts/pgo.sh) feeds profile-guided
# optimization when present; go test does not pick it up automatically
# for library packages, so pass it explicitly.
PGO=""
[ -f default.pgo ] && PGO="-pgo=default.pgo"
BIN=$(mktemp /tmp/mcbench.XXXXXX.test)
go test $PGO -c -o "$BIN" .
trap 'rm -f "$BIN"' EXIT

START=$(date +%s)
i=0
while [ "$i" -lt "$REPS" ]; do
	if [ -n "$INTERLEAVE" ]; then
		"$INTERLEAVE" -test.run '^$' -test.bench "$SIMS" -test.benchtime 3x -test.benchmem | grep '^Benchmark' >>"$BASELINE"
	fi
	"$BIN" -test.run '^$' -test.bench "$SIMS" -test.benchtime 3x -test.benchmem | grep '^Benchmark' >>"$RAW"
	if [ -n "$INTERLEAVE" ]; then
		"$INTERLEAVE" -test.run '^$' -test.bench "$POP" -test.benchtime 1x -test.benchmem | grep '^Benchmark' >>"$BASELINE"
	fi
	"$BIN" -test.run '^$' -test.bench "$POP" -test.benchtime 1x -test.benchmem | grep '^Benchmark' >>"$RAW"
	i=$((i + 1))
done
END=$(date +%s)

# summarize RAWFILE LABEL -> "name min_ns allocs" lines on stdout.
summarize() {
	awk '{
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns = 0; allocs = -1
		for (f = 3; f < NF; f++) {
			if ($(f + 1) == "ns/op") ns = $f
			if ($(f + 1) == "allocs/op") allocs = $f
		}
		if (ns == 0) next
		if (!(name in min) || ns < min[name]) min[name] = ns
		al[name] = allocs
	}
	END { for (n in min) printf "%s %.0f %.0f\n", n, min[n], al[n] }' "$1" | sort
}

summarize "$RAW" >"$RAW.sum"
if [ -n "$BASELINE" ]; then
	summarize "$BASELINE" >"$RAW.base.sum"
fi

# Shared-warmup vs per-policy-warmup policy sweep, same binary and time
# window: the checkpointed-sweep speedup. Both run sequentially, so the
# ratio is pure per-op cost, immune to core-count differences.
SWEEP_SPEEDUP=""
shared=$(awk '$1 == "BenchmarkPolicySweepSharedWarmup" { print $2 }' "$RAW.sum")
cold=$(awk '$1 == "BenchmarkPolicySweepColdWarmup" { print $2 }' "$RAW.sum")
if [ -n "$shared" ] && [ -n "$cold" ]; then
	SWEEP_SPEEDUP=$(awk -v c="$cold" -v s="$shared" 'BEGIN { printf "%.2f", c / s }')
fi

{
	echo '{'
	echo '  "protocol": "min ns/op over '"$REPS"' runs (sim benchmarks: -benchtime 3x; population sweep: -benchtime 1x, fresh process per run), -benchmem",'
	echo '  "walltime_seconds": '$((END - START))','
	if [ -n "$SWEEP_SPEEDUP" ]; then
		echo '  "policy_sweep_shared_warmup_speedup": '"$SWEEP_SPEEDUP"','
	fi
	echo '  "benchmarks": ['
	first=1
	while read -r name ns allocs; do
		[ "$first" -eq 1 ] || echo ','
		first=0
		printf '    {"name": "%s", "ns_per_op": %s, "allocs_per_op": %s' "$name" "$ns" "$allocs"
		if [ -n "$BASELINE" ]; then
			base=$(awk -v n="$name" '$1 == n { print $2 }' "$RAW.base.sum")
			base_allocs=$(awk -v n="$name" '$1 == n { print $3 }' "$RAW.base.sum")
			if [ -n "$base" ]; then
				speedup=$(awk -v b="$base" -v n="$ns" 'BEGIN { printf "%.2f", b / n }')
				printf ', "baseline_ns_per_op": %s, "baseline_allocs_per_op": %s, "speedup": %s' \
					"$base" "$base_allocs" "$speedup"
			fi
		fi
		printf '}'
	done <"$RAW.sum"
	echo ''
	echo '  ]'
	echo '}'
} >"$OUT"

rm -f "$RAW.sum" "$RAW.base.sum"
echo "wrote $OUT (raw samples in $RAW)"
