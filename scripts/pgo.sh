#!/bin/sh
# pgo.sh — regenerate default.pgo, the profile feeding profile-guided
# optimization of the simulator benchmarks (see scripts/bench.sh).
# Profiles the hot simulator paths and merges them.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d /tmp/mcbench-pgo.XXXXXX)
trap 'rm -rf "$TMP"' EXIT

go test -run '^$' -bench 'BenchmarkDetailedSimulator2Core$' -benchtime 8x \
	-cpuprofile "$TMP/det.prof" . >/dev/null
go test -run '^$' -bench 'BenchmarkBadcoSimulator8Core$' -benchtime 8x \
	-cpuprofile "$TMP/badco.prof" . >/dev/null
go test -run '^$' -bench 'BenchmarkPopulationSweep$' -benchtime 1x \
	-cpuprofile "$TMP/pop.prof" . >/dev/null
go test -run '^$' -bench 'BenchmarkPolicySweepSharedWarmup$' -benchtime 8x \
	-cpuprofile "$TMP/sweep.prof" . >/dev/null
go test -run '^$' -bench 'BenchmarkSampledDetailed2Core10x$' -benchtime 8x \
	-cpuprofile "$TMP/sampled.prof" . >/dev/null

go tool pprof -proto "$TMP/det.prof" "$TMP/badco.prof" "$TMP/pop.prof" "$TMP/sweep.prof" "$TMP/sampled.prof" >default.pgo
echo "wrote default.pgo"
