package mcbench

import (
	"fmt"

	"mcbench/internal/trace"
)

// Trace is an immutable µop sequence for one benchmark of the synthetic
// suite (the SPEC CPU2006 stand-ins).
type Trace = trace.Trace

// Benchmarks returns the 22 benchmark names of the suite, in suite
// order.
func Benchmarks() []string { return trace.SuiteNames() }

// isSuiteBenchmark reports whether name is in the suite.
func isSuiteBenchmark(name string) bool {
	_, ok := trace.ByName(name)
	return ok
}

// GenerateTrace builds a deterministic n-µop trace for the named suite
// benchmark.
func GenerateTrace(name string, n int) (*Trace, error) {
	p, ok := trace.ByName(name)
	if !ok {
		return nil, fmt.Errorf("mcbench: unknown benchmark %q (see Benchmarks())", name)
	}
	return trace.Generate(p, n)
}

// GenerateSuite builds n-µop traces for every suite benchmark, keyed by
// name.
func GenerateSuite(n int) (map[string]*Trace, error) {
	return trace.NewSuite(n)
}
