package mcbench

import (
	"fmt"
	"sort"
	"sync"

	"mcbench/internal/bench"
	"mcbench/internal/trace"
)

// Trace is an immutable µop sequence for one benchmark.
type Trace = trace.Trace

// Source is a named, lazily-memoized provider of benchmark traces — the
// layer that decouples everything above the simulators from any fixed
// benchmark list. Three families exist, addressed by spec strings (see
// Suite):
//
//   - "suite": the fixed 22-benchmark synthetic suite (the SPEC CPU2006
//     stand-ins of the paper);
//   - "scaled:B[:seed]": B ∈ [12, 512] reproducible synthetic benchmarks
//     derived from one seed by jittering the three Table-IV
//     intensity-class families (names like low-017, high-203);
//   - "dir:PATH": recorded .mcbt trace files under PATH, loaded through
//     the binary trace codec.
//
// A source builds each trace on first use and memoizes it until
// Release, so big populations stay cheap: consumers resolve only the
// benchmarks they actually touch, when they touch them.
type Source = bench.Source

// suites is the process-wide shared source registry: one Source per
// canonical spec, so every Simulate/Sweep/Lab naming the same suite
// shares one memoized trace set instead of regenerating it per call.
var suites = struct {
	sync.Mutex
	m map[string]Source
}{m: map[string]Source{}}

// Suite returns the shared benchmark source named by spec (see Source
// for the syntax; "" means "suite"), creating and registering it on
// first use. Repeated calls with equivalent specs ("scaled:64" and
// "scaled:64:1") return the same instance.
func Suite(spec string) (Source, error) {
	suites.Lock()
	defer suites.Unlock()
	if s, ok := suites.m[spec]; ok {
		return s, nil
	}
	src, err := bench.Parse(spec)
	if err != nil {
		return nil, err
	}
	if s, ok := suites.m[src.Name()]; ok {
		// Another spelling of an already-registered source: remember
		// the alias so repeat calls skip the parse (for scaled specs a
		// full parameter derivation, for dir specs a filesystem scan).
		suites.m[spec] = s
		return s, nil
	}
	suites.m[src.Name()] = src
	if spec != src.Name() {
		suites.m[spec] = src
	}
	return src, nil
}

// Suites lists the canonical names of the shared sources registered so
// far, sorted; "suite" is always present. Alias spellings ("scaled:64"
// for "scaled:64:1") collapse onto their canonical name.
func Suites() []string {
	suites.Lock()
	defer suites.Unlock()
	if _, ok := suites.m["suite"]; !ok {
		suites.m["suite"] = bench.NewSuite()
	}
	set := map[string]bool{}
	for _, s := range suites.m {
		set[s.Name()] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// defaultSource returns the shared fixed-suite source.
func defaultSource() Source {
	s, err := Suite("suite")
	if err != nil {
		panic(err) // "suite" always parses
	}
	return s
}

// Benchmarks returns the 22 benchmark names of the fixed suite, in
// suite order. For other sources, use Source.Names (or Lab.Benchmarks).
func Benchmarks() []string { return trace.SuiteNames() }

// GenerateTrace builds a deterministic n-µop trace for the named suite
// benchmark. It is a convenience for the fixed suite; source-aware code
// should call Source.Trace instead.
func GenerateTrace(name string, n int) (*Trace, error) {
	p, ok := trace.ByName(name)
	if !ok {
		return nil, fmt.Errorf("mcbench: unknown benchmark %q (see Benchmarks())", name)
	}
	return trace.Generate(p, n)
}

// GenerateSuite builds n-µop traces for every fixed-suite benchmark,
// keyed by name. Prefer a Source for anything long-lived: it builds
// lazily and can release.
func GenerateSuite(n int) (map[string]*Trace, error) {
	return trace.NewSuite(n)
}
