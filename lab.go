package mcbench

import (
	"context"
	"fmt"

	"mcbench/internal/bench"
	"mcbench/internal/experiments"
	"mcbench/internal/multicore"
)

// Config scales an experiment campaign; it is the experiments package
// configuration re-exported. Use DefaultConfig for the paper's scale or
// QuickConfig for a fast low-resolution campaign, then adjust fields
// (TraceLen, Seed, CacheDir, ...) as needed.
type Config = experiments.Config

// DefaultConfig reproduces the paper's experimental scale.
func DefaultConfig() Config { return experiments.DefaultConfig() }

// QuickConfig returns a reduced campaign (smaller traces, subsampled
// populations, fewer Monte-Carlo trials) that finishes in minutes.
func QuickConfig() Config { return experiments.QuickConfig() }

// ProductEvent reports the lifecycle of one expensive Lab product —
// sweeps starting and finishing, models building, tables loading from
// the persistent cache. Install a Config.Observer to receive them; the
// serve subsystem streams them to clients as job progress.
type ProductEvent = experiments.ProductEvent

// Table is a printable experiment result: a title, column headers, rows
// and notes. Print it with Fprint or String.
type Table = experiments.Table

// Lab owns an experiment campaign's state: a benchmark source
// (Config.Source; the fixed suite by default), BADCO models, workload
// populations and the memoized population IPC tables everything else
// derives from. Traces resolve lazily through the source and one-shot
// consumers release them, so resident memory tracks the in-flight
// working set rather than the source size. A Lab is safe for concurrent
// use; every expensive product is built once behind a single-flight
// guard, and all methods honour context cancellation. With
// Config.CacheDir set, the expensive sweeps persist across processes,
// keyed by source identity among the other campaign parameters.
type Lab struct {
	lab *experiments.Lab
}

// NewLab creates a Lab with the given configuration.
func NewLab(cfg Config) *Lab { return &Lab{lab: experiments.NewLab(cfg)} }

// runParams maps a public cores argument onto experiment parameters:
// 0 means every experiment's paper default; a positive count pins both
// the single-count experiments and the core-count sweeps of fig2, fig3
// and fig7.
func runParams(cores int) experiments.Params { return experiments.ParamsFor(cores) }

// lookup resolves an experiment name with a did-you-mean error.
func lookup(name string) (experiments.Experiment, error) {
	e, ok := experiments.Lookup(name)
	if !ok {
		if s := experiments.Suggest(name); s != "" {
			return nil, fmt.Errorf("mcbench: unknown experiment %q (did you mean %q?)", name, s)
		}
		return nil, fmt.Errorf("mcbench: unknown experiment %q (see Experiments())", name)
	}
	return e, nil
}

// Run executes one registered experiment (see Experiments for the
// catalogue) and returns its table. cores pins the core count (0 = the
// experiment's paper default). The experiment's prerequisites are warmed
// first with campaign-level parallelism, so repeated Runs share work
// through the lab's memoization.
func (l *Lab) Run(ctx context.Context, name string, cores int) (*Table, error) {
	e, err := lookup(name)
	if err != nil {
		return nil, err
	}
	p := runParams(cores)
	if reqs := e.Requests(l.lab, p); len(reqs) > 0 {
		if _, err := l.lab.Warm(ctx, reqs, 0); err != nil {
			return nil, err
		}
	}
	return e.Run(ctx, l.lab, p)
}

// Chart renders the experiment's text chart, or ok=false when the
// experiment has no chart form.
func (l *Lab) Chart(ctx context.Context, name string, cores int) (chart string, ok bool, err error) {
	e, err := lookup(name)
	if err != nil {
		return "", false, err
	}
	return experiments.Chart(ctx, e, l.lab, runParams(cores))
}

// Warm precomputes the expensive products (population sweeps, reference
// IPCs, MPKI measurements) the named experiments will read, with bounded
// parallelism. It returns the number of distinct products in the plan.
// Unknown experiment names are an error (with a did-you-mean hint), like
// Run. Cancelling the context stops the campaign promptly; completed
// products stay memoized (and persisted when CacheDir is set).
func (l *Lab) Warm(ctx context.Context, names []string, cores int) (int, error) {
	for _, name := range names {
		if name == "all" {
			continue
		}
		if _, err := lookup(name); err != nil {
			return 0, err
		}
	}
	return l.lab.Warm(ctx, l.lab.CampaignPlan(names, runParams(cores)), 0)
}

// Simulate runs one workload on the lab's shared traces and models — the
// memoized equivalents of the package-level Simulate — so repeated calls
// and experiment runs share the expensive state. The trace length is the
// lab's Config.TraceLen; WithTraceLen is rejected here.
func (l *Lab) Simulate(ctx context.Context, workload []string, opts ...Option) (*Result, error) {
	o := buildOptions(opts)
	if o.fixedLen {
		return nil, fmt.Errorf("mcbench: WithTraceLen applies to the package-level Simulate; a Lab's trace length is Config.TraceLen")
	}
	if o.suite != nil {
		return nil, fmt.Errorf("mcbench: WithSuite applies to the package-level Simulate; a Lab's source is Config.Source")
	}
	o.traceLen = l.lab.Config().TraceLen
	w, err := o.validate(workload)
	if err != nil {
		return nil, err
	}
	if _, err := bench.CheckNames(l.lab.Source(), [][]string{w}); err != nil {
		return nil, err
	}
	switch o.engine {
	case BADCO:
		models, err := l.lab.Models(ctx)
		if err != nil {
			return nil, err
		}
		r, err := multicore.ApproximateWithWarmup(ctx, multicore.Workload(w), models, o.policy, o.warmup, o.quota)
		if err != nil {
			return nil, err
		}
		return convert(r, BADCO), nil
	default:
		if o.sampling.Enabled() {
			r, err := multicore.DetailedSampled(ctx, multicore.Workload(w), l.lab.Provider(), o.policy, o.sampling, o.quota)
			if err != nil {
				return nil, err
			}
			return convertSampled(r), nil
		}
		r, err := multicore.DetailedWithWarmup(ctx, multicore.Workload(w), l.lab.Provider(), o.policy, o.warmup, o.quota)
		if err != nil {
			return nil, err
		}
		return convert(r, Detailed), nil
	}
}

// Diffs returns the per-workload throughput differences d(w) between
// policies X and Y under the metric, over the BADCO population table for
// the given core count — the values the paper's whole confidence
// machinery (cv, W = 8cv², stratification) operates on.
func (l *Lab) Diffs(ctx context.Context, cores int, m Metric, x, y Policy) ([]float64, error) {
	return l.lab.Diffs(ctx, cores, m, x, y)
}

// Population returns the lab's workload population for the given core
// count (the full enumeration where tractable, a uniform sample where
// not, per the configuration).
func (l *Lab) Population(cores int) *Population { return l.lab.Population(cores) }

// Benchmarks returns the benchmark names of the lab's source, in source
// order — the index order of Population workloads, Classes and
// BenchFeatures. For the default configuration this is Benchmarks().
func (l *Lab) Benchmarks() []string { return l.lab.Names() }

// Suite returns the benchmark source the lab studies (Config.Source, or
// the shared fixed suite when the configuration left it nil).
func (l *Lab) Suite() Source { return l.lab.Source() }

// Classes returns the measured memory-intensity class of every benchmark
// (indexed like Benchmarks()), the classification behind benchmark
// stratification.
func (l *Lab) Classes(ctx context.Context) ([]int, error) { return l.lab.Classes(ctx) }

// BenchFeatures returns the microarchitecture-independent feature matrix
// of the suite (one row per benchmark), the input to the cluster-based
// selection methods.
func (l *Lab) BenchFeatures(ctx context.Context) ([][]float64, error) {
	return l.lab.BenchFeatures(ctx)
}

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	Name     string
	Synopsis string
	// Group is "paper" for reproductions of the paper's figures and
	// tables, "extension" for experiments beyond it.
	Group string
}

// Experiments enumerates the registered experiments: the paper's figures
// and tables first (in run order), then the extensions.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, g := range []experiments.Group{experiments.GroupPaper, experiments.GroupExtension} {
		for _, e := range experiments.ByGroup(g) {
			out = append(out, ExperimentInfo{Name: e.Name(), Synopsis: e.Synopsis(), Group: string(e.Group())})
		}
	}
	return out
}
