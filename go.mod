module mcbench

go 1.24
