package mcbench_test

// End-to-end test of the public serving surface: Serve hosts the
// experiment service in-process, Client drives it, and cancelling the
// lifetime context drains the server cleanly (the SIGTERM path).

import (
	"context"
	"strings"
	"testing"
	"time"

	"mcbench"
)

func startServer(t *testing.T, cfg mcbench.Config) (*mcbench.Client, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- mcbench.Serve(ctx, cfg, mcbench.ServeOptions{
			Addr: "127.0.0.1:0", Workers: 2,
			OnReady: func(addr string) { ready <- addr },
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		cancel()
		t.Fatalf("Serve exited before ready: %v", err)
	case <-time.After(15 * time.Second):
		cancel()
		t.Fatal("server never became ready")
	}
	c, err := mcbench.NewClient("http://" + addr)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	return c, cancel, done
}

func TestServeAndClientEndToEnd(t *testing.T) {
	c, cancel, done := startServer(t, tinyConfig())
	defer cancel()
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil || !h.OK {
		t.Fatalf("Health: %+v, %v", h, err)
	}
	if h.Build.GoVersion == "" || h.Source != "suite" {
		t.Errorf("health payload %+v", h)
	}
	exps, err := c.ServerExperiments(ctx)
	if err != nil || len(exps) < 20 {
		t.Fatalf("ServerExperiments: %d, %v", len(exps), err)
	}
	source, benches, err := c.Benches(ctx)
	if err != nil || source != "suite" || len(benches) != 22 {
		t.Fatalf("Benches: %s/%d, %v", source, len(benches), err)
	}
	// No cache directory configured: the listing is empty, not an error.
	entries, err := c.Cache(ctx)
	if err != nil || len(entries) != 0 {
		t.Fatalf("Cache: %d entries, %v", len(entries), err)
	}

	// Submit a simulation-free experiment and follow it to the result.
	st, err := c.SubmitExperiment(ctx, "config", 0)
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	if _, err := c.Events(ctx, st.ID, 0, func(ev mcbench.JobEvent) bool {
		types = append(types, ev.Type)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 || types[len(types)-1] != "done" {
		t.Errorf("event types %v", types)
	}
	res, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil || len(res.Table.Rows) == 0 || !strings.Contains(res.Text, "==") {
		t.Fatalf("empty result %+v", res)
	}

	// Unknown experiments fail at submission with the suggestion.
	if _, err := c.SubmitExperiment(ctx, "fig12", 0); err == nil || !strings.Contains(err.Error(), "fig1") {
		t.Errorf("unknown-experiment error %v lacks suggestion", err)
	}
	// Options the server cannot honour are rejected client-side.
	if _, err := c.SubmitSimulate(ctx, []string{"mcf"}, mcbench.WithTraceLen(100)); err == nil {
		t.Error("SubmitSimulate accepted WithTraceLen")
	}
	if jobs, err := c.Jobs(ctx); err != nil || len(jobs) < 1 {
		t.Errorf("Jobs: %d, %v", len(jobs), err)
	}

	// Cancelling the lifetime context drains cleanly: nil return, the
	// exit-0 path of a SIGTERM'd server.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained Serve returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not drain")
	}
}

func TestClientSimulateJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	c, cancel, _ := startServer(t, tinyConfig())
	defer cancel()
	ctx := context.Background()

	st, err := c.SubmitSimulate(ctx, []string{"mcf"},
		mcbench.WithCores(2), mcbench.WithSimulator(mcbench.BADCO))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 || len(res.Results[0].IPC) != 2 {
		t.Fatalf("simulate result %+v", res)
	}
	for _, v := range res.Results[0].IPC {
		if v <= 0 || v > 4 {
			t.Errorf("implausible IPC %g", v)
		}
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := mcbench.NewClient("ftp://nope"); err == nil {
		t.Error("non-http scheme accepted")
	}
	if _, err := mcbench.NewClient("http://ok.example"); err != nil {
		t.Errorf("valid URL rejected: %v", err)
	}
}

// TestClientSampledJob submits a sampled simulation through the public
// client and checks the estimate comes back with its confidence columns.
func TestClientSampledJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	c, cancel, _ := startServer(t, tinyConfig())
	defer cancel()
	ctx := context.Background()

	st, err := c.SubmitSimulate(ctx, []string{"mcf", "povray"},
		mcbench.WithSampling(1000, 200, 200))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("results %+v", res)
	}
	r := res.Results[0]
	if r.Windows != 4 { // tinyConfig: 4000-µop traces, 1000-µop units
		t.Errorf("windows = %d, want 4", r.Windows)
	}
	if len(r.CIHalf) != 2 || len(r.CV) != 2 || r.Sampling == nil {
		t.Fatalf("sampled result lacks confidence columns: %+v", r)
	}
	// The server rejects invalid sampling combinations up front.
	if _, err := c.SubmitSimulate(ctx, []string{"mcf"},
		mcbench.WithSampling(1000, 200, 200),
		mcbench.WithSimulator(mcbench.BADCO)); err == nil {
		t.Error("sampled BADCO submission accepted")
	}
}
