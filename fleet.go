package mcbench

// The fleet peer adapter: internal/fleet speaks to remote nodes through
// its Peer interface, and this file implements it over Client — so
// coordinator↔worker traffic inherits the client's retries, backoff and
// typed errors. The adapter is injected into the serve layer as a
// Dialer (see Serve), which keeps the import direction acyclic:
// mcbench → internal/serve → internal/fleet.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"mcbench/internal/experiments"
	"mcbench/internal/fleet"
	"mcbench/internal/serve"
	"mcbench/internal/telemetry"
)

// FleetJoin registers a worker with a coordinator (POST /fleet/join).
// A coordinator that rejects the worker as incompatible (mixed builds or
// lab configurations) answers 409; most callers want Serve's Join
// option, which drives the whole membership loop, instead.
func (c *Client) FleetJoin(ctx context.Context, req FleetJoinRequest) (*FleetJoinResponse, error) {
	var resp FleetJoinResponse
	if err := c.do(ctx, http.MethodPost, "/fleet/join", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// FleetHeartbeat renews a fleet membership lease. A 404 means the
// coordinator no longer knows the id (restart or lease lapse): re-join.
func (c *Client) FleetHeartbeat(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/fleet/heartbeat", map[string]string{"id": id}, nil)
}

// FleetLeave deregisters a fleet membership (idempotent).
func (c *Client) FleetLeave(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/fleet/leave", map[string]string{"id": id}, nil)
}

// SubmitWarm submits a warm job: the server precomputes the named
// campaign products into its lab and persistent cache without rendering
// a table. On a fleet coordinator the plan is sharded across the
// workers; this is how a campaign's sweeps are pre-distributed before
// interactive submissions need them.
func (c *Client) SubmitWarm(ctx context.Context, products []ProductRef) (*JobStatus, error) {
	return c.submit(ctx, serve.SubmitRequest{
		Kind: serve.KindWarm,
		Warm: &serve.WarmRequest{Products: products},
	})
}

// CacheGet fetches one stored table's raw bytes by content key
// (GET /cache/{key}), integrity footer included — the fleet's result
// fabric. ok is false on a plain 404 miss.
func (c *Client) CacheGet(ctx context.Context, key string) (data []byte, ok bool, err error) {
	_, data, err = c.getRaw(ctx, "/cache/"+url.PathEscape(key))
	if err != nil {
		if IsNotFound(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return data, true, nil
}

// clientPeer adapts Client to fleet.Peer.
type clientPeer struct{ c *Client }

func (p clientPeer) Join(ctx context.Context, req fleet.JoinRequest) (*fleet.JoinResponse, error) {
	resp, err := p.c.FleetJoin(ctx, req)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusConflict {
			return nil, fmt.Errorf("%w: %s", fleet.ErrIncompatible, ae.Message)
		}
		return nil, err
	}
	return resp, nil
}

func (p clientPeer) Heartbeat(ctx context.Context, id string) error {
	return p.c.FleetHeartbeat(ctx, id)
}

func (p clientPeer) Leave(ctx context.Context, id string) error {
	return p.c.FleetLeave(ctx, id)
}

func (p clientPeer) SubmitWarm(ctx context.Context, products []experiments.Request) (string, error) {
	refs := make([]ProductRef, len(products))
	for i, r := range products {
		refs[i] = ProductRef{Sim: string(r.Sim), Cores: r.Cores, Policy: string(r.Policy)}
	}
	st, err := p.c.SubmitWarm(ctx, refs)
	if err != nil {
		return "", err
	}
	return st.ID, nil
}

func (p clientPeer) WaitJob(ctx context.Context, jobID string) error {
	_, err := p.c.Wait(ctx, jobID)
	return err
}

func (p clientPeer) CancelJob(ctx context.Context, jobID string) error {
	_, err := p.c.Cancel(ctx, jobID)
	return err
}

func (p clientPeer) FetchCache(ctx context.Context, key string) ([]byte, bool, error) {
	return p.c.CacheGet(ctx, key)
}

// FetchMetrics implements fleet.MetricsFetcher: the coordinator's
// /fleet/metrics aggregation scrapes each worker through it.
func (p clientPeer) FetchMetrics(ctx context.Context) (*telemetry.Snapshot, error) {
	return p.c.Metrics(ctx)
}

// dialPeer opens a fleet peer for an advertised address, accepting both
// bare "host:port" (the common -join form) and full http(s) URLs.
func dialPeer(addr string) (fleet.Peer, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c, err := NewClient(base)
	if err != nil {
		return nil, err
	}
	return clientPeer{c}, nil
}
